"""The 256-bit burst decompressor (paper Fig 10).

The receive path buffers up to two 256-bit beats (the Burst Buffer),
because one compressed 8-value group can straddle consecutive beats.
Each cycle, the Tag Decoder reads the 16-bit tag vector, computes the
eight payload sizes, and the eight Decompression Blocks reconstruct a
full 256-bit output beat; the buffer then shifts out the consumed bits
and refills.

The model consumes the byte stream produced by the Compression Engine /
software codec and is validated bit-exact against ``repro.core``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.bitstream import BitReader
from repro.core.bounds import ErrorBound
from repro.core.codec import decompress as codec_decompress
from repro.core.container import (
    GROUP_SIZE,
    GROUP_TAG_BITS,
    CompressedGradients,
    TruncatedRecordError,
    scan_group_offsets,
    unpack_group_records,
)
from repro.core.tags import PAYLOAD_BITS

from .axi import BURST_BITS, WORDS_PER_BURST, words_to_bytes
from .blocks import DecompressionBlock
from .compression_engine import DEFAULT_CLOCK_HZ, PIPELINE_DEPTH, EngineStats


class DecompressionError(ValueError):
    """Raised when a compressed stream is truncated or malformed."""


class TagDecoder:
    """Computes the eight payload sizes from a 16-bit tag vector."""

    @staticmethod
    def decode(tag_word: int) -> List[int]:
        """Return the per-lane tags of one group."""
        return [(tag_word >> (2 * lane)) & 0b11 for lane in range(GROUP_SIZE)]

    @staticmethod
    def group_payload_bits(tag_word: int) -> int:
        """Total payload bits following this tag vector (0–256)."""
        return sum(PAYLOAD_BITS[t] for t in TagDecoder.decode(tag_word))


class BurstBuffer:
    """Double-beat staging buffer in front of the Decompression Unit.

    Behaviourally a bit FIFO: the hardware's shift-and-refill is modeled
    by a reader over the whole stream plus a high-water accounting of how
    many beats had to be fetched before each group could decode.
    """

    def __init__(self, data: bytes) -> None:
        self._reader = BitReader(data)
        self._total_bits = len(data) * 8
        self.beats_fetched = 0

    def bits_consumed(self) -> int:
        return self._total_bits - self._reader.bits_remaining

    def has_group(self) -> bool:
        """True while at least a tag vector remains.

        The final byte of a stream may carry up to 7 padding bits; a
        whole 16-bit tag vector can never be padding, so requiring 16
        readable bits cleanly terminates parsing.
        """
        return self._reader.bits_remaining >= GROUP_TAG_BITS

    def read(self, nbits: int) -> int:
        value = self._reader.read(nbits)
        # Account beats as the stream high-water mark crosses 256-bit lines.
        consumed = self.bits_consumed()
        needed_beats = -(-consumed // BURST_BITS)
        self.beats_fetched = max(self.beats_fetched, needed_beats)
        return value


class DecompressionEngine:
    """Reconstructs float32 payloads from the compressed bitstream."""

    def __init__(
        self,
        bound: ErrorBound,
        num_blocks: int = WORDS_PER_BURST,
        clock_hz: float = DEFAULT_CLOCK_HZ,
    ) -> None:
        if num_blocks < 1:
            raise ValueError("need at least one decompression block")
        self.bound = bound
        self.clock_hz = clock_hz
        self.blocks = [DecompressionBlock(bound) for _ in range(num_blocks)]
        self.total_cycles = 0
        self.total_groups = 0

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def decompress(
        self, data: bytes, num_values: Optional[int] = None
    ) -> "tuple[bytes, EngineStats]":
        """Decompress a packet payload back to float32 bytes.

        ``num_values`` trims the final group's padding lanes; without it
        the output length is rounded up to a whole group (the hardware
        behaviour — the host's receive buffer length does the trimming).

        This is the bulk path: the group records are located and decoded
        with the vectorized container kernels and the stats computed in
        closed form.  It is pinned byte- and stats-identical to the
        burst-by-burst behavioural model, which remains available as
        :meth:`decompress_structural`.
        """
        stats = EngineStats()
        try:
            offsets = scan_group_offsets(data)
        except TruncatedRecordError as exc:
            raise DecompressionError(
                f"compressed stream truncated inside group {exc.group}"
            ) from exc
        tags, payloads = unpack_group_records(data, offsets)
        groups = int(offsets.shape[0]) - 1
        consumed = int(offsets[-1])
        compressed = CompressedGradients(
            tags=tags, payloads=payloads, bound=self.bound
        )
        values = codec_decompress(compressed)
        word_bits = values.view(np.uint32)
        if num_values is not None:
            if num_values > groups * GROUP_SIZE:
                raise DecompressionError(
                    f"stream holds {groups * GROUP_SIZE} values, "
                    f"caller expected {num_values}"
                )
            if np.any(word_bits[num_values:]):
                raise DecompressionError("non-zero padding lanes in final group")
            values = values[:num_values]
        stats.bursts_out = groups
        stats.bursts_in = -(-consumed * 8 // BURST_BITS)
        stats.bits_out = int(values.shape[0]) * 32
        stats.cycles = self._cycles_for(groups)
        self._count_lane_words(groups)
        self.total_cycles += stats.cycles
        self.total_groups += groups
        return values.tobytes(), stats

    def decompress_structural(
        self, data: bytes, num_values: Optional[int] = None
    ) -> "tuple[bytes, EngineStats]":
        """Burst-by-burst behavioural model (one DB lane per word).

        Drop-in equivalent of :meth:`decompress`; kept as the structural
        reference the bulk path is validated against.
        """
        stats = EngineStats()
        buffer = BurstBuffer(data)
        words: List[int] = []
        groups = 0
        while buffer.has_group():
            try:
                tag_word = buffer.read(GROUP_TAG_BITS)
                tags = TagDecoder.decode(tag_word)
                for lane, tag in enumerate(tags):
                    nbits = PAYLOAD_BITS[tag]
                    payload = buffer.read(nbits) if nbits else 0
                    block = self.blocks[lane % self.num_blocks]
                    words.append(block.process(tag, payload))
            except EOFError as exc:
                raise DecompressionError(
                    f"compressed stream truncated inside group {groups}"
                ) from exc
            groups += 1
            stats.bursts_out += 1
        if num_values is not None:
            if num_values > len(words):
                raise DecompressionError(
                    f"stream holds {len(words)} values, caller expected {num_values}"
                )
            extra = words[num_values:]
            if any(w != 0 for w in extra):
                raise DecompressionError("non-zero padding lanes in final group")
            words = words[:num_values]
        stats.bursts_in = buffer.beats_fetched
        stats.bits_out = len(words) * 32
        stats.cycles = self._cycles_for(groups)
        self.total_cycles += stats.cycles
        self.total_groups += groups
        return words_to_bytes(words), stats

    def _count_lane_words(self, groups: int) -> None:
        """Attribute ``groups`` full groups of words to the DB lanes."""
        lanes = np.arange(WORDS_PER_BURST, dtype=np.int64) % self.num_blocks
        for lane in lanes:
            self.blocks[int(lane)].words_produced += groups

    def _cycles_for(self, groups: int) -> int:
        if groups == 0:
            return 0
        beats_per_group = -(-WORDS_PER_BURST // self.num_blocks)
        return groups * beats_per_group + PIPELINE_DEPTH
