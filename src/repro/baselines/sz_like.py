"""A from-scratch error-bounded lossy compressor in the style of SZ.

SZ [32] predicts each value from its neighbours and quantizes the
prediction residual under an absolute error bound; predictable data
collapses to small integer codes.  This reproduction implements the 1-D
variant: Lorenzo (previous-value) prediction, residual quantization at
``2 * bound`` steps, a compact variable-length code for the quantization
integers, and an escape path storing unpredictable values raw.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core.bitstream import BitReader, BitWriter

#: Residual codes representable by the small code path.
_MAX_CODE = (1 << 15) - 1


def compress(values: np.ndarray, bound: float) -> bytes:
    """Compress float32 values with max absolute error ``bound``."""
    if bound <= 0:
        raise ValueError("error bound must be positive")
    arr = np.ascontiguousarray(values, dtype=np.float32).reshape(-1)
    writer = BitWriter()
    step = 2.0 * bound
    previous = 0.0
    for value in arr.tolist():
        if not np.isfinite(value):
            _write_escape(writer, value)
            previous = 0.0
            continue
        residual = value - previous
        code = int(round(residual / step))
        if abs(code) > _MAX_CODE:
            _write_escape(writer, value)
            previous = value
            continue
        reconstructed = previous + code * step
        if abs(reconstructed - value) > bound:
            _write_escape(writer, value)
            previous = value
            continue
        _write_code(writer, code)
        previous = reconstructed
    payload = writer.getvalue()
    return struct.pack("<I", arr.size) + payload


def _write_code(writer: BitWriter, code: int) -> None:
    """Variable-length residual code.

    Prefix ``0`` + 2 bits for codes in [-1, 1] plus "zero" fast path;
    prefix ``10`` + 8 bits for small codes; prefix ``11`` + marker for
    16-bit codes.  The tiny-code fast path is what makes smooth, highly
    predictable streams collapse.
    """
    if -1 <= code <= 1:
        writer.write(0b0, 1)
        writer.write(code + 1, 2)
    elif -127 <= code <= 127:
        writer.write(0b01, 2)  # read as '0b10' LSB-first: 1 then 0
        writer.write(code + 127, 8)
    else:
        writer.write(0b11, 2)
        writer.write(0, 1)  # discriminates from escape
        writer.write(code + _MAX_CODE, 16)


def _write_escape(writer: BitWriter, value: float) -> None:
    writer.write(0b11, 2)
    writer.write(1, 1)
    writer.write(struct.unpack("<I", struct.pack("<f", value))[0], 32)


def decompress(blob: bytes, bound: float) -> np.ndarray:
    """Inverse of :func:`compress` (same bound required)."""
    if bound <= 0:
        raise ValueError("error bound must be positive")
    if len(blob) < 4:
        raise ValueError("blob too short for header")
    (count,) = struct.unpack("<I", blob[:4])
    reader = BitReader(blob[4:])
    step = 2.0 * bound
    out = np.empty(count, dtype=np.float32)
    previous = 0.0
    for i in range(count):
        first = reader.read(1)
        if first == 0:
            code = reader.read(2) - 1
            previous = previous + code * step
            out[i] = previous
            continue
        second = reader.read(1)
        if second == 0:
            code = reader.read(8) - 127
            previous = previous + code * step
            out[i] = previous
            continue
        escape = reader.read(1)
        if escape:
            bits = reader.read(32)
            value = struct.unpack("<f", struct.pack("<I", bits))[0]
            out[i] = value
            previous = value if np.isfinite(value) else 0.0
        else:
            code = reader.read(16) - _MAX_CODE
            previous = previous + code * step
            out[i] = previous
    return out


def compression_ratio(values: np.ndarray, bound: float) -> float:
    """Original bytes over compressed bytes."""
    arr = np.ascontiguousarray(values, dtype=np.float32).reshape(-1)
    if arr.size == 0:
        return 1.0
    return arr.nbytes / len(compress(arr, bound))
