"""Comparator baselines: truncation, snappy-like LZ, SZ-like, cost models."""

from . import snappy_like, sz_like
from .quantization import OneBitSGD, QuantizationResult, qsgd, terngrad
from .sparsification import DeepGradientCompression, SparsificationResult
from .software_cost import (
    SOFTWARE_CODECS,
    SoftwareCodec,
    baseline_training_time,
    software_training_time,
)
from .truncation import (
    PAPER_TRUNCATIONS,
    make_truncation_hook,
    truncate_lsbs,
    truncation_max_error,
    truncation_ratio,
)

__all__ = [
    "snappy_like",
    "sz_like",
    "OneBitSGD",
    "QuantizationResult",
    "qsgd",
    "terngrad",
    "DeepGradientCompression",
    "SparsificationResult",
    "SOFTWARE_CODECS",
    "SoftwareCodec",
    "baseline_training_time",
    "software_training_time",
    "PAPER_TRUNCATIONS",
    "make_truncation_hook",
    "truncate_lsbs",
    "truncation_max_error",
    "truncation_ratio",
]
