"""CPU-side cost model for *software* compression (paper Fig 7).

Fig 7's argument: even the fastest software compressors slow training
down overall, because (de)compression burns host CPU time comparable to
— or exceeding — the communication time it saves.  Absolute software
throughputs are machine-dependent; the defaults below are calibrated to
the era's published figures (Snappy several hundred MB/s/core, SZ around
a hundred, and the paper's observation that even "simple truncation ...
significantly increases computation time" because packing/unpacking
floats burdens the CPU; GPUs offer only ~50% more throughput [30]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class SoftwareCodec:
    """Throughput/ratio profile of one software compression scheme."""

    name: str
    compress_bps: float  # bytes/second on the uncompressed side
    decompress_bps: float
    ratio: float  # typical compression ratio on fp32 gradients
    lossless: bool

    def compression_time(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError("nbytes cannot be negative")
        return nbytes / self.compress_bps

    def decompression_time(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError("nbytes cannot be negative")
        return nbytes / self.decompress_bps

    def roundtrip_time(self, nbytes: int) -> float:
        return self.compression_time(nbytes) + self.decompression_time(nbytes)


#: Calibrated software codecs for Fig 7.  Ratios for the lossy schemes
#: match our measured values on gradient-shaped data; throughputs are
#: era-typical single-core figures.
SOFTWARE_CODECS: Dict[str, SoftwareCodec] = {
    "snappy": SoftwareCodec(
        name="snappy",
        compress_bps=250e6,
        decompress_bps=500e6,
        ratio=1.5,
        lossless=True,
    ),
    "sz": SoftwareCodec(
        name="sz",
        compress_bps=100e6,
        decompress_bps=150e6,
        ratio=5.0,
        lossless=False,
    ),
    "truncation": SoftwareCodec(
        name="truncation",
        compress_bps=400e6,  # bit pack/unpack on the CPU
        decompress_bps=400e6,
        ratio=2.0,  # 16b-T
        lossless=False,
    ),
}


def software_training_time(
    compute_s: float,
    communicate_s: float,
    gradient_nbytes: int,
    codec: SoftwareCodec,
) -> float:
    """Per-iteration time with software compression in the loop.

    Compression happens on the host before send, decompression after
    receive; neither overlaps the GPU compute in the paper's framework,
    so the software time adds to the iteration. Communication shrinks
    by the codec's ratio (payload only — headers would remain, but at
    software granularity the paper neglects them and so do we).
    """
    if compute_s < 0 or communicate_s < 0:
        raise ValueError("times cannot be negative")
    software = codec.roundtrip_time(gradient_nbytes)
    return compute_s + communicate_s / codec.ratio + software


def baseline_training_time(compute_s: float, communicate_s: float) -> float:
    """Per-iteration time without any compression."""
    if compute_s < 0 or communicate_s < 0:
        raise ValueError("times cannot be negative")
    return compute_s + communicate_s
