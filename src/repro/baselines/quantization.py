"""Gradient quantization baselines from the paper's related work.

Sec. IX cites three algorithmic gradient-reduction families that
INCEPTIONN positions itself against; all three are implemented here so
the comparison benches can run them on the same gradient traces:

* **1-bit SGD** (Seide et al., INTERSPEECH'14 [25]): sign quantization
  with error feedback — each value becomes one bit plus two shared
  scales; the quantization residual is carried into the next batch.
* **TernGrad** (Wen et al., NIPS'17 [26]): stochastic ternarization to
  {-s, 0, +s} with a per-vector scale.
* **QSGD** (Alistarh et al., NIPS'17 [27]): stochastic uniform
  quantization to ``2^bits - 1`` levels of the normalized magnitude,
  unbiased by construction.

These are *algorithmic* compressors: software-side, stateful (1-bit
SGD), or randomized (TernGrad/QSGD) — properties that complicate a
stateless in-NIC implementation, which is the co-design argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class QuantizationResult:
    """A quantized gradient plus its bookkeeping."""

    values: np.ndarray  # dequantized (what the receiver trains with)
    payload_bits: int  # wire size of the quantized representation

    @property
    def compression_ratio(self) -> float:
        original = self.values.size * 32
        return original / self.payload_bits if self.payload_bits else float("inf")


class OneBitSGD:
    """Sign quantization with error-feedback state (1-bit SGD).

    Stateful: the residual of iteration *t* is added to the gradient of
    iteration *t+1* before quantizing, which is what keeps training
    converging despite the brutal 1-bit representation.
    """

    def __init__(self) -> None:
        self._residual: Optional[np.ndarray] = None

    def quantize(self, gradient: np.ndarray) -> QuantizationResult:
        grad = np.ascontiguousarray(gradient, dtype=np.float32).reshape(-1)
        if self._residual is not None and self._residual.shape == grad.shape:
            grad = grad + self._residual
        positive = grad >= 0
        # Per-sign mean magnitudes reconstruct an unbiased-ish estimate.
        pos_scale = float(grad[positive].mean()) if positive.any() else 0.0
        neg_scale = float(grad[~positive].mean()) if (~positive).any() else 0.0
        values = np.where(positive, pos_scale, neg_scale).astype(np.float32)
        self._residual = (grad - values).astype(np.float32)
        # 1 bit per value + two float32 scales.
        return QuantizationResult(values=values, payload_bits=grad.size + 64)

    def reset(self) -> None:
        self._residual = None


def terngrad(
    gradient: np.ndarray, rng: np.random.Generator
) -> QuantizationResult:
    """Stochastic ternarization: g -> s * sign(g) * b, b ~ Bernoulli(|g|/s)."""
    grad = np.ascontiguousarray(gradient, dtype=np.float32).reshape(-1)
    scale = float(np.max(np.abs(grad))) if grad.size else 0.0
    if scale == 0.0:
        return QuantizationResult(
            values=np.zeros_like(grad), payload_bits=2 * grad.size + 32
        )
    probability = np.abs(grad) / scale
    keep = rng.random(grad.size) < probability
    values = np.where(keep, np.sign(grad) * scale, 0.0).astype(np.float32)
    # 2 bits per value (ternary) + one float32 scale.
    return QuantizationResult(values=values, payload_bits=2 * grad.size + 32)


def qsgd(
    gradient: np.ndarray, rng: np.random.Generator, bits: int = 4
) -> QuantizationResult:
    """QSGD stochastic uniform quantization with ``2^bits - 1`` levels."""
    if not 1 <= bits <= 16:
        raise ValueError(f"bits must be in [1, 16], got {bits}")
    grad = np.ascontiguousarray(gradient, dtype=np.float32).reshape(-1)
    norm = float(np.linalg.norm(grad))
    if norm == 0.0:
        return QuantizationResult(
            values=np.zeros_like(grad), payload_bits=(bits + 1) * grad.size + 32
        )
    levels = (1 << bits) - 1
    scaled = np.abs(grad) / norm * levels
    floor = np.floor(scaled)
    # Stochastic rounding keeps the estimator unbiased.
    up = rng.random(grad.size) < (scaled - floor)
    quantized = floor + up
    values = (np.sign(grad) * quantized / levels * norm).astype(np.float32)
    # sign + level bits per value, plus the norm.
    return QuantizationResult(
        values=values, payload_bits=(bits + 1) * grad.size + 32
    )
