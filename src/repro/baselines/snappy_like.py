"""A from-scratch LZ77 byte compressor standing in for Snappy.

The paper's Fig 7 uses Google's Snappy as the representative fast
lossless compressor; pip installs are unavailable offline, so this
module implements the same family of algorithm — greedy LZ with a
4-byte-hash match table, literals and length/offset copies — with a
Snappy-like format.  On float32 gradient bytes it achieves the paper's
reported ~1.5x only when many values repeat (e.g. zeros); on dense
random mantissas it stays near 1x, which is exactly the point the paper
makes about lossless compression of floats.

Format (little-endian varint header = uncompressed length, then tokens):

* literal token:  ``0x00 | (len-1) << 2``  (len <= 60), raw bytes follow
* copy token:     ``0x01 | (len-4) << 2``, 2-byte offset follows
"""

from __future__ import annotations

_MIN_MATCH = 4
_MAX_MATCH = 64  # (len - 4) must fit 6 bits
_MAX_LITERAL = 60
_MAX_OFFSET = 0xFFFF
_HASH_BITS = 14


def _write_varint(out: bytearray, value: int) -> None:
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_varint(data: bytes, pos: int) -> "tuple[int, int]":
    value = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint header")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 35:
            raise ValueError("varint header too long")


def _hash4(data: bytes, pos: int) -> int:
    word = int.from_bytes(data[pos : pos + 4], "little")
    return (word * 0x1E35A7BD) >> (32 - _HASH_BITS) & ((1 << _HASH_BITS) - 1)


def _emit_literal(out: bytearray, data: bytes, start: int, end: int) -> None:
    pos = start
    while pos < end:
        chunk = min(_MAX_LITERAL, end - pos)
        out.append((chunk - 1) << 2)
        out.extend(data[pos : pos + chunk])
        pos += chunk


def compress(data: bytes) -> bytes:
    """Greedy LZ compression of a byte string."""
    out = bytearray()
    _write_varint(out, len(data))
    n = len(data)
    if n < _MIN_MATCH:
        if n:
            _emit_literal(out, data, 0, n)
        return bytes(out)

    table = [-1] * (1 << _HASH_BITS)
    pos = 0
    literal_start = 0
    while pos + _MIN_MATCH <= n:
        h = _hash4(data, pos)
        candidate = table[h]
        table[h] = pos
        if (
            candidate >= 0
            and pos - candidate <= _MAX_OFFSET
            and data[candidate : candidate + _MIN_MATCH]
            == data[pos : pos + _MIN_MATCH]
        ):
            length = _MIN_MATCH
            limit = min(_MAX_MATCH, n - pos)
            while (
                length < limit and data[candidate + length] == data[pos + length]
            ):
                length += 1
            if literal_start < pos:
                _emit_literal(out, data, literal_start, pos)
            out.append(0x01 | ((length - _MIN_MATCH) << 2))
            out.extend((pos - candidate).to_bytes(2, "little"))
            pos += length
            literal_start = pos
        else:
            pos += 1
    if literal_start < n:
        _emit_literal(out, data, literal_start, n)
    return bytes(out)


def decompress(blob: bytes) -> bytes:
    """Inverse of :func:`compress`."""
    expected, pos = _read_varint(blob, 0)
    out = bytearray()
    n = len(blob)
    while pos < n:
        token = blob[pos]
        pos += 1
        if token & 0x01:  # copy
            length = ((token >> 2) & 0x3F) + _MIN_MATCH
            if pos + 2 > n:
                raise ValueError("truncated copy token")
            offset = int.from_bytes(blob[pos : pos + 2], "little")
            pos += 2
            if offset == 0 or offset > len(out):
                raise ValueError(f"invalid copy offset {offset}")
            for _ in range(length):  # may self-overlap, byte-wise copy
                out.append(out[-offset])
        else:  # literal
            length = (token >> 2) + 1
            if pos + length > n:
                raise ValueError("truncated literal")
            out.extend(blob[pos : pos + length])
            pos += length
    if len(out) != expected:
        raise ValueError(
            f"decompressed {len(out)} bytes, header promised {expected}"
        )
    return bytes(out)


def compression_ratio(data: bytes) -> float:
    """Uncompressed over compressed size."""
    if not data:
        return 1.0
    return len(data) / len(compress(data))
