"""Floating-point LSB truncation (the paper's ``xb-T`` baseline).

Fig 4 / Fig 14 compare INCEPTIONN's codec against simply dropping the
least-significant ``x`` bits of every IEEE-754 word: a fixed 32/(32-x)
compression ratio with uncontrolled, open-ended error — dropping 24 bits
eats into the exponent and wrecks complex models, which is precisely the
motivation for the error-bounded codec.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

#: Truncation widths evaluated in the paper.
PAPER_TRUNCATIONS = (16, 22, 24)


def truncate_lsbs(values: np.ndarray, bits: int) -> np.ndarray:
    """Zero the low ``bits`` bits of each float32's bit pattern."""
    if not 0 <= bits < 32:
        raise ValueError(f"truncation bits must be in [0, 32), got {bits}")
    arr = np.ascontiguousarray(values, dtype=np.float32)
    if bits == 0:
        return arr.copy()
    raw = arr.view(np.uint32)
    mask = np.uint32(0xFFFFFFFF << bits & 0xFFFFFFFF)
    return (raw & mask).view(np.float32).copy()


def truncation_ratio(bits: int) -> float:
    """Fixed compression ratio of ``bits``-LSB truncation."""
    if not 0 <= bits < 32:
        raise ValueError(f"truncation bits must be in [0, 32), got {bits}")
    return 32.0 / (32 - bits)


def truncation_max_error(values: np.ndarray, bits: int) -> float:
    """Observed max absolute error of truncating the given values."""
    arr = np.asarray(values, dtype=np.float32)
    out = truncate_lsbs(arr, bits)
    finite = np.isfinite(arr)
    if not finite.any():
        return 0.0
    return float(np.max(np.abs(arr[finite] - out[finite])))


def make_truncation_hook(
    bits: int, target: str = "gradient"
) -> Callable[[int, np.ndarray], np.ndarray]:
    """A ``gradient_hook`` for :func:`repro.dnn.train_single_node`.

    ``target`` selects what Fig 4 truncates: ``"gradient"`` perturbs g
    before the update; weight truncation is applied by the caller after
    each update (see the Fig 4 bench).
    """
    if target != "gradient":
        raise ValueError("hooks only truncate gradients; truncate weights "
                         "explicitly after each update")

    def hook(iteration: int, grad: np.ndarray) -> np.ndarray:
        return truncate_lsbs(grad, bits)

    return hook
