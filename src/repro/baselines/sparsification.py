"""Deep Gradient Compression-style sparsification (related work [12]).

DGC (Lin et al., ICLR'18) skips communicating small gradients: each
worker accumulates gradients locally and only transmits coordinates
whose accumulated magnitude clears a top-k threshold, with momentum
correction.  It is *complementary* to INCEPTIONN (the paper says so);
this implementation lets the benches measure its ratio/accuracy point
on the same traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class SparsificationResult:
    """Sparse update: transmitted values with everything else zero."""

    values: np.ndarray
    transmitted: int  # number of coordinates actually sent

    @property
    def density(self) -> float:
        return self.transmitted / self.values.size if self.values.size else 0.0

    @property
    def payload_bits(self) -> int:
        # index (32b) + value (32b) per transmitted coordinate.
        return self.transmitted * 64

    @property
    def compression_ratio(self) -> float:
        original = self.values.size * 32
        return original / self.payload_bits if self.payload_bits else float("inf")


class DeepGradientCompression:
    """Top-k sparsification with local gradient accumulation.

    ``sparsity`` is the fraction of coordinates *dropped* each round
    (0.99 means send the top 1%).  Dropped mass is accumulated locally
    and eventually clears the threshold — no gradient is lost, only
    delayed.
    """

    def __init__(self, sparsity: float = 0.99) -> None:
        if not 0.0 <= sparsity < 1.0:
            raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
        self.sparsity = sparsity
        self._accumulated: Optional[np.ndarray] = None

    def sparsify(self, gradient: np.ndarray) -> SparsificationResult:
        grad = np.ascontiguousarray(gradient, dtype=np.float32).reshape(-1)
        if self._accumulated is not None and self._accumulated.shape == grad.shape:
            grad = grad + self._accumulated
        k = max(1, int(round(grad.size * (1.0 - self.sparsity))))
        if k >= grad.size:
            self._accumulated = np.zeros_like(grad)
            return SparsificationResult(values=grad.copy(), transmitted=grad.size)
        magnitudes = np.abs(grad)
        threshold = np.partition(magnitudes, grad.size - k)[grad.size - k]
        mask = magnitudes >= threshold
        # Ties can push the count above k; that is fine (send them all).
        values = np.where(mask, grad, 0.0).astype(np.float32)
        self._accumulated = np.where(mask, 0.0, grad).astype(np.float32)
        return SparsificationResult(values=values, transmitted=int(mask.sum()))

    @property
    def pending_nbytes(self) -> int:
        """Bytes of gradient mass currently held back locally."""
        if self._accumulated is None:
            return 0
        return int(np.count_nonzero(self._accumulated)) * 4

    def reset(self) -> None:
        self._accumulated = None
