"""Command-line interface: ``repro <subcommand>``.

Subcommands
-----------
``compress``    compress a ``.npy`` (or raw float32) file to ``.incgrad``
``decompress``  reconstruct a ``.incgrad`` file back to ``.npy``
``stats``       Table III-style bitwidth/ratio report for a gradient file
``simulate``    per-iteration time of a Fig 12 configuration at paper scale
``train``       run the simulated-cluster training demo (any --strategy)
``exchange``    paper-scale gradient-exchange timing under any codec
``bench``       wall-clock benchmark suite, written as BENCH_*.json
``codecs``      list registered gradient codecs and their measured ratios
``strategies``  list registered gradient strategies (ring, wa, async_ps, ...)
``trace``       run / validate / summarize / convert execution traces
``lint``        repo-aware static analysis (see ``repro lint --list-rules``)
``sanitize``    determinism sanitizer: replay + event-order race detection

``train`` and ``exchange`` accept ``--trace out.json`` to record the
run's message, link, ring-step and codec events (plus the metrics
snapshot) in the versioned ``repro.trace`` JSON format; add
``--trace-chrome out.json`` for a ``chrome://tracing`` /
Perfetto-loadable rendering of the same events.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np


def _load_floats(path: Path) -> np.ndarray:
    if path.suffix == ".npy":
        return np.load(path).astype(np.float32).reshape(-1)
    data = path.read_bytes()
    if len(data) % 4:
        raise SystemExit(f"{path}: raw input must be whole float32 words")
    return np.frombuffer(data, dtype=np.float32).copy()


def _cmd_compress(args: argparse.Namespace) -> int:
    from repro.core import ErrorBound
    from repro.core.gradient_file import save

    values = _load_floats(Path(args.input))
    written = save(args.output, values, ErrorBound(args.bound))
    ratio = values.nbytes / written if written else float("inf")
    print(
        f"{args.input}: {values.size} values, {values.nbytes} -> {written} "
        f"bytes ({ratio:.2f}x) at bound 2^-{args.bound}"
    )
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    from repro.core.gradient_file import load

    values = load(args.input)
    np.save(args.output, values)
    print(f"{args.input}: restored {values.size} values -> {args.output}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.core import ErrorBound, bitwidth_distribution, compression_ratio

    values = _load_floats(Path(args.input))
    for exponent in args.bounds:
        bound = ErrorBound(exponent)
        dist = bitwidth_distribution(values, bound)
        ratio = compression_ratio(values, bound)
        row = "  ".join(
            f"{label}={100 * frac:5.1f}%" for label, frac in dist.as_row.items()
        )
        print(f"2^-{exponent}: ratio {ratio:5.2f}x  {row}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.perfmodel import estimate_iteration_time

    est = estimate_iteration_time(
        args.model,
        args.configuration,
        num_workers=args.workers,
        bandwidth_bps=args.gbps * 1e9,
    )
    print(
        f"{args.model} / {args.configuration} on {args.workers} workers "
        f"@ {args.gbps:g} Gb/s:"
    )
    print(f"  iteration      {est.iteration_s * 1e3:10.2f} ms")
    print(f"  computation    {est.computation_s * 1e3:10.2f} ms")
    print(f"  communication  {est.communication_s * 1e3:10.2f} ms")
    return 0


def _stream_for(args: argparse.Namespace):
    """Resolve the --codec flag into a StreamProfile (or None)."""
    from repro.core import profile_for

    if getattr(args, "codec", None) is None:
        return None
    try:
        return profile_for(args.codec)
    except KeyError as exc:
        raise SystemExit(f"--codec: {exc.args[0]}")


def _tracer_for(args: argparse.Namespace):
    """Build a Tracer when ``--trace``/``--trace-chrome`` was given."""
    if getattr(args, "trace", None) or getattr(args, "trace_chrome", None):
        from repro.obs import Tracer

        return Tracer()
    return None


def _write_trace_outputs(
    tracer, args: argparse.Namespace, **meta: object
) -> None:
    """Write the requested trace files and report where they went."""
    if tracer is None:
        return
    from repro.obs import trace_document, write_chrome, write_trace

    if getattr(args, "trace", None):
        write_trace(tracer, args.trace, meta=dict(meta))
        print(f"trace: {len(tracer.events)} events -> {args.trace}")
    if getattr(args, "trace_chrome", None):
        write_chrome(trace_document(tracer, meta=dict(meta)), args.trace_chrome)
        print(f"chrome trace -> {args.trace_chrome}")


def _add_trace_arguments(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a repro.trace JSON of the run's recorded events",
    )
    p.add_argument(
        "--trace-chrome", default=None, metavar="FILE",
        help="write the run's events in Chrome tracing (Perfetto) format",
    )


def _add_topology_argument(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--topology", default=None, metavar="SPEC",
        help='fabric: "star" (default), "ring", "fat-tree:k=4", '
        '"leaf-spine:spines=2,leaves=4,hosts=2" or "two-tier:racks=2,hosts=2"',
    )


def _add_agg_site_argument(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--agg-site", default="endpoint", choices=("endpoint", "switch"),
        help="where gradients are summed: at the aggregating endpoint "
        "(default) or in-network at the fabric's switches (needs a "
        "multi-tier --topology and a homomorphic --codec)",
    )


def _add_tenant_arguments(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--tenants", default=None, metavar="SPEC",
        help='background tenants sharing the fabric, e.g. "train:4,infer:8" '
        "(kind:hosts, comma-separated)",
    )
    p.add_argument(
        "--prioritize", action="store_true",
        help="strict per-ToS priority queues protecting the exchange "
        "from tenant traffic",
    )
    p.add_argument(
        "--tenant-seed", type=int, default=0, metavar="S",
        help="seed for background flow think-time randomness (default 0)",
    )


def _tenants_for(args: argparse.Namespace):
    from repro.network import parse_tenants

    if not getattr(args, "tenants", None):
        return ()
    try:
        return parse_tenants(args.tenants)
    except ValueError as exc:
        raise SystemExit(f"--tenants: {exc}")


def _add_loss_arguments(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--loss-rate", type=float, default=0.0, metavar="P",
        help="per-train drop probability on every link (default lossless)",
    )
    p.add_argument(
        "--retransmit", type=float, default=None, metavar="RTO_US",
        help="enable sender retransmission with this timeout (microseconds)",
    )


def _retransmit_for(args: argparse.Namespace):
    from repro.network import RetransmitPolicy

    if args.retransmit is None:
        # A lossy link without recovery starves the synchronous
        # exchanges (a dropped train shifts every later message), so
        # --loss-rate implies the default retransmission policy unless
        # an explicit timeout overrides it.
        if getattr(args, "loss_rate", 0.0) > 0.0:
            return RetransmitPolicy()
        return None
    return RetransmitPolicy(rto_s=args.retransmit * 1e-6)


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.core import inceptionn_profile
    from repro.distributed import available_strategies, get_strategy, run_strategy
    from repro.dnn import LRSchedule, SGD, build_hdc, hdc_dataset
    from repro.transport import ClusterConfig

    # --strategy is the registry-backed selector; --algorithm survives
    # as the legacy alias for its two original values.
    name = args.strategy or args.algorithm or "ring"
    try:
        strategy = get_strategy(name)
    except ValueError:
        known = ", ".join(available_strategies())
        raise SystemExit(f"--strategy: unknown strategy {name!r} ({known})")
    options = {
        "sync_period": args.sync_period,
        "max_staleness": args.staleness,
        "staleness_bound": args.staleness,
        "group_size": args.group_size,
        "compute_jitter": args.jitter,
    }

    stream = _stream_for(args)
    if stream is None and args.compress:
        stream = inceptionn_profile()
    tracer = _tracer_for(args)
    num_nodes = args.workers + strategy.extra_nodes(args.workers, options)
    try:
        result = run_strategy(
            strategy,
            build_net=lambda s: build_hdc(seed=s),
            make_optimizer=lambda: SGD(LRSchedule(args.lr), momentum=0.9),
            dataset=hdc_dataset(train_size=600, test_size=150, seed=args.seed),
            num_workers=args.workers,
            iterations=args.iterations,
            batch_size=args.batch_size,
            cluster=ClusterConfig(
                num_nodes=num_nodes,
                profile=stream,
                loss_rate=args.loss_rate,
                retransmit=_retransmit_for(args),
                topology=args.topology,
                agg_site=args.agg_site,
            ),
            stream=stream,
            tracer=tracer,
            seed=args.seed,
            options=options,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    tag = f"+{args.codec}" if args.codec else ("+C" if args.compress else "")
    extras = result.report.extras if result.report else {}
    notes = ""
    if extras.get("staleness"):
        notes = f", mean staleness {float(np.mean(extras['staleness'])):.2f}"
    elif "sync_rounds" in extras:
        notes = f", {extras['sync_rounds']} sync rounds"
    print(
        f"{result.algorithm}{tag} x{args.workers}: "
        f"loss {result.losses[0]:.3f} -> {result.losses[-1]:.3f}, "
        f"top-1 {result.final_top1:.3f}, "
        f"simulated {result.virtual_time_s:.3f} s "
        f"({100 * result.communication_fraction:.0f}% communication)"
        f"{notes}"
    )
    _write_trace_outputs(
        tracer,
        args,
        command="train",
        algorithm=result.algorithm,
        workers=args.workers,
        iterations=args.iterations,
        codec=args.codec or ("inceptionn" if args.compress else None),
        virtual_time_s=result.virtual_time_s,
    )
    return 0


def _cmd_strategies(args: argparse.Namespace) -> int:
    from repro.distributed import STRATEGIES, available_strategies

    print(f"{'name':<14}{'nodes':<16}description")
    for name in available_strategies():
        strategy = STRATEGIES[name]()
        extra = strategy.extra_nodes(args.workers, {})
        nodes = f"{args.workers}+{extra}" if extra else f"{args.workers}"
        print(f"{name:<14}{nodes:<16}{strategy.description}")
    return 0


def _cmd_exchange(args: argparse.Namespace) -> int:
    from repro.perfmodel import (
        measure_profile_ratio,
        simulate_ring_exchange,
        simulate_wa_exchange,
    )

    stream = _stream_for(args)
    tracer = _tracer_for(args)
    tenants = _tenants_for(args)
    simulate = (
        simulate_ring_exchange if args.algorithm == "ring" else simulate_wa_exchange
    )
    try:
        result = simulate(
            num_workers=args.workers,
            nbytes=int(args.mbytes * 1e6),
            iterations=args.iterations,
            bandwidth_bps=args.gbps * 1e9,
            stream=stream,
            tracer=tracer,
            loss_rate=args.loss_rate,
            retransmit=_retransmit_for(args),
            fidelity=args.fidelity,
            train_packets=args.train_packets,
            topology=args.topology,
            tenants=tenants,
            prioritize=args.prioritize,
            tenant_seed=args.tenant_seed,
            agg_site=args.agg_site,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    label = f"{args.algorithm}+{args.codec}" if stream else args.algorithm
    if args.fidelity != "packet":
        label = f"{label} [{args.fidelity}]"
    fabric = f" on {args.topology}" if args.topology else ""
    print(
        f"{label} x{args.workers} @ {args.gbps:g} Gb/s, "
        f"{args.mbytes:g} MB gradients{fabric}:"
    )
    if stream is not None:
        print(f"  measured ratio {measure_profile_ratio(stream):10.2f}x")
    print(f"  per iteration  {result.per_iteration_s * 1e3:10.2f} ms")
    print(f"  total          {result.total_s * 1e3:10.2f} ms")
    print(f"  wire ratio     {result.wire_ratio:10.2f}x")
    if args.agg_site != "endpoint":
        print(f"  link payload   {result.link_payload_nbytes / 1e6:10.2f} MB")
        print(f"  engine cycles  {result.agg_engine_cycles:10d}")
        print(f"  switch reduces {result.switch_reductions:10d}")
    if args.loss_rate > 0.0:
        print(f"  retransmitted  {result.trains_retransmitted:10d} trains")
    if tenants:
        mode = "priority" if args.prioritize else "FIFO"
        print(
            f"  background     {result.background_messages:10d} msgs "
            f"({result.background_nbytes / 1e6:.1f} MB, {mode} queues)"
        )
    _write_trace_outputs(
        tracer,
        args,
        command="exchange",
        algorithm=args.algorithm,
        workers=args.workers,
        iterations=args.iterations,
        codec=args.codec,
        total_s=result.total_s,
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.bench import (
        DEFAULT_OUTPUT,
        compare_bench,
        find_prior,
        render_comparison,
        run_bench,
        validate_bench,
    )
    from repro.report import dumps_strict

    if args.validate is not None:
        path = Path(args.validate)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
            validate_bench(doc)
        except (OSError, ValueError) as exc:
            print(f"{path}: INVALID: {exc}")
            return 1
        print(
            f"{path}: valid {doc['schema']} v{doc['version']}, "
            f"{len(doc['results'])} entries"
        )
        return 0

    doc = run_bench(quick=args.quick)
    validate_bench(doc)
    output = Path(args.out) if args.out else Path(DEFAULT_OUTPUT)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(dumps_strict(doc, indent=2) + "\n", encoding="utf-8")
    mode = "quick" if args.quick else "full"
    print(f"wrote {output} ({mode} suite, {len(doc['results'])} entries)")
    for entry in doc["results"]:
        print(f"  {entry['name']:<32} {entry['wall_s'] * 1e3:10.2f} ms")
    prior_path = find_prior(output)
    if prior_path is not None:
        try:
            prior = json.loads(prior_path.read_text(encoding="utf-8"))
            validate_bench(prior)
        except ValueError as exc:
            print(f"prior {prior_path} skipped: {exc}")
            return 0
        print(render_comparison(compare_bench(doc, prior), prior_path.name))
    return 0


def _cmd_codecs(args: argparse.Namespace) -> int:
    from repro.core import available_codecs, codec_tos, get_codec, profile_for
    from repro.perfmodel import measure_profile_ratio

    rng = np.random.default_rng(args.seed)
    sample = (rng.standard_normal(1 << 14) * 0.004).astype(np.float32)
    print(
        f"{'name':<16}{'tos':<6}{'kind':<10}{'capabilities':<28}"
        f"{'ratio':<8}params"
    )
    for name in available_codecs():
        codec = get_codec(name)
        ratio = measure_profile_ratio(profile_for(name), sample=sample)
        params = ", ".join(
            f"{k}={v}" for k, v in codec.default_params().items()
        ) or "-"
        kind = "lossless" if codec.lossless else "lossy"
        caps = ",".join(sorted(codec.capabilities())) or "-"
        print(
            f"{name:<16}{codec_tos(name):#04x}  {kind:<10}{caps:<28}"
            f"{ratio:<8.2f}{params}"
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.action == "run":
        from repro.obs import Tracer, write_trace
        from repro.perfmodel import simulate_ring_exchange, simulate_wa_exchange

        tracer = Tracer()
        simulate = (
            simulate_ring_exchange
            if args.algorithm == "ring"
            else simulate_wa_exchange
        )
        result = simulate(
            num_workers=args.workers,
            nbytes=int(args.mbytes * 1e6),
            iterations=args.iterations,
            bandwidth_bps=args.gbps * 1e9,
            compress_gradients=args.compress,
            tracer=tracer,
        )
        write_trace(
            tracer,
            args.output,
            meta={
                "command": "trace run",
                "algorithm": args.algorithm,
                "workers": args.workers,
                "iterations": args.iterations,
                "compress": args.compress,
                "total_s": result.total_s,
            },
        )
        print(
            f"{args.algorithm} x{args.workers}: {result.total_s * 1e3:.2f} ms, "
            f"{len(tracer.events)} events -> {args.output}"
        )
        return 0

    if args.action == "validate":
        import json

        from repro.obs import validate_trace

        doc = json.loads(Path(args.input).read_text(encoding="utf-8"))
        try:
            validate_trace(doc)
        except ValueError as exc:
            print(f"{args.input}: INVALID: {exc}")
            return 1
        print(
            f"{args.input}: valid {doc['schema']} v{doc['version']}, "
            f"{len(doc['events'])} events"
        )
        return 0

    if args.action == "summary":
        from collections import Counter as TallyCounter

        from repro.obs import load_trace, validate_trace

        doc = load_trace(args.input)
        validate_trace(doc)
        events = doc["events"]
        by_kind = TallyCounter(
            (event["cat"], event["name"]) for event in events
        )
        print(f"{args.input}: {len(events)} events")
        for (cat, name), count in sorted(by_kind.items()):
            print(f"  {cat:<8} {name:<18} {count:>8}")
        phase_totals: dict = {}
        for event in events:
            if event["cat"] == "phase":
                phase_totals[event["name"]] = (
                    phase_totals.get(event["name"], 0.0) + event["dur"]
                )
        if phase_totals:
            print("phase totals:")
            for name, total in sorted(phase_totals.items()):
                print(f"  {name:<14} {total * 1e3:12.3f} ms")
        counters = doc.get("metrics", {}).get("counters", {})
        if counters:
            print("counters:")
            for name, value in sorted(counters.items()):
                print(f"  {name:<32} {value:>12}")
        return 0

    if args.action == "chrome":
        from repro.obs import load_trace, to_chrome, validate_trace

        doc = load_trace(args.input)
        validate_trace(doc)
        chrome = to_chrome(doc)
        import json

        Path(args.output).write_text(json.dumps(chrome, indent=1))
        print(
            f"{args.input} -> {args.output} "
            f"({len(chrome['traceEvents'])} Chrome events)"
        )
        return 0

    if args.action == "schema":
        import json

        from repro.obs import TRACE_SCHEMA

        print(json.dumps(TRACE_SCHEMA, indent=2))
        return 0

    raise SystemExit(f"unknown trace action {args.action!r}")


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(args)


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from repro.distributed import available_strategies
    from repro.sanitize import StrategyScenario, sanitize

    known = available_strategies()
    if args.strategy:
        strategies = args.strategy
    elif args.agg_site != "endpoint":
        # Only the worker-aggregator family has a reduction root the
        # fabric can host; the default sweep narrows accordingly.
        strategies = ["wa"]
    else:
        strategies = list(known)
    for name in strategies:
        if name not in known:
            raise SystemExit(
                f"--strategy: unknown strategy {name!r} "
                f"({', '.join(known)})"
            )

    failed = False
    for index, name in enumerate(strategies):
        scenario = StrategyScenario(
            strategy=name,
            workers=args.workers,
            iterations=args.iterations,
            seed=args.seed,
            loss_rate=args.loss_rate,
            codec=args.codec,
            topology=args.topology,
            agg_site=args.agg_site,
        )
        try:
            report = sanitize(
                scenario, perturb_seeds=tuple(args.perturb_seeds)
            )
        except ValueError as exc:
            raise SystemExit(str(exc))
        if index:
            print()
        print(report.render())
        if not report.passed:
            failed = True
            if args.diff_out:
                import json

                Path(args.diff_out).write_text(
                    json.dumps(report.to_dict(), indent=2, default=str)
                )
                print(f"  diff artifact -> {args.diff_out}")
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="INCEPTIONN reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compress", help="compress floats to .incgrad")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--bound", type=int, default=10, help="error bound 2^-B")
    p.set_defaults(func=_cmd_compress)

    p = sub.add_parser("decompress", help="restore a .incgrad to .npy")
    p.add_argument("input")
    p.add_argument("output")
    p.set_defaults(func=_cmd_decompress)

    p = sub.add_parser("stats", help="bitwidth/ratio report")
    p.add_argument("input")
    p.add_argument(
        "--bounds", type=int, nargs="+", default=[10, 8, 6], metavar="B"
    )
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("simulate", help="paper-scale iteration time")
    p.add_argument("--model", default="AlexNet")
    p.add_argument(
        "--configuration",
        default="INC+C",
        choices=("WA", "WA+C", "INC", "INC+C"),
    )
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--gbps", type=float, default=10.0)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("train", help="simulated-cluster training demo")
    p.add_argument(
        "--strategy", default=None, metavar="NAME",
        help="gradient strategy from the registry (see `repro strategies`)",
    )
    p.add_argument(
        "--algorithm", default=None, choices=("ring", "wa"),
        help="legacy alias for --strategy (ring/wa only)",
    )
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--iterations", type=int, default=40)
    p.add_argument("--batch-size", type=int, default=25)
    p.add_argument("--lr", type=float, default=0.02)
    p.add_argument("--compress", action="store_true")
    p.add_argument(
        "--codec", default=None, metavar="NAME",
        help="registered codec for the gradient stream (see `repro codecs`)",
    )
    p.add_argument(
        "--sync-period", type=int, default=4, metavar="H",
        help="local_sgd: local steps between delta syncs (default 4)",
    )
    p.add_argument(
        "--staleness", type=int, default=None, metavar="S",
        help="async_ps SSP bound / stale_async round bound (default off/0)",
    )
    p.add_argument(
        "--group-size", type=int, default=2, metavar="K",
        help="hierarchy: leaf-group size (default 2)",
    )
    p.add_argument(
        "--jitter", type=float, default=0.0, metavar="F",
        help="uniform(+/-F) perturbation of each worker's compute time",
    )
    p.add_argument("--seed", type=int, default=0)
    _add_topology_argument(p)
    _add_agg_site_argument(p)
    _add_loss_arguments(p)
    _add_trace_arguments(p)
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser(
        "strategies", help="list registered gradient strategies"
    )
    p.add_argument("--workers", type=int, default=4)
    p.set_defaults(func=_cmd_strategies)

    p = sub.add_parser("exchange", help="paper-scale exchange timing")
    p.add_argument("--algorithm", default="ring", choices=("ring", "wa"))
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--iterations", type=int, default=1)
    p.add_argument("--mbytes", type=float, default=10.0, help="gradient MB")
    p.add_argument("--gbps", type=float, default=10.0)
    p.add_argument(
        "--codec", default=None, metavar="NAME",
        help="registered codec for the gradient stream (see `repro codecs`)",
    )
    p.add_argument(
        "--fidelity", default="packet", choices=("packet", "flow"),
        help="packet: event-level simulation; flow: calibrated "
        "flow-level fast path for large worker counts",
    )
    p.add_argument(
        "--train-packets", type=int, default=4400, metavar="N",
        help="packets per train (smaller trains = finer-grained "
        "priority preemption on shared fabrics)",
    )
    _add_topology_argument(p)
    _add_agg_site_argument(p)
    _add_tenant_arguments(p)
    _add_loss_arguments(p)
    _add_trace_arguments(p)
    p.set_defaults(func=_cmd_exchange)

    p = sub.add_parser(
        "bench", help="wall-clock benchmark suite (BENCH_*.json artifact)"
    )
    p.add_argument(
        "--quick", action="store_true",
        help="smaller sample sizes and scales (the CI configuration)",
    )
    p.add_argument(
        "--out", default=None, metavar="FILE",
        help="output artifact path (default: BENCH_10.json)",
    )
    p.add_argument(
        "--validate", default=None, metavar="FILE",
        help="validate an existing bench artifact and exit",
    )
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("codecs", help="list registered gradient codecs")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_codecs)

    p = sub.add_parser("trace", help="execution-trace tooling")
    trace_sub = p.add_subparsers(dest="action", required=True)

    t = trace_sub.add_parser("run", help="run a traced exchange")
    t.add_argument("output", help="output trace JSON path")
    t.add_argument("--algorithm", default="ring", choices=("ring", "wa"))
    t.add_argument("--workers", type=int, default=4)
    t.add_argument("--iterations", type=int, default=1)
    t.add_argument("--mbytes", type=float, default=1.0, help="gradient MB")
    t.add_argument("--gbps", type=float, default=10.0)
    t.add_argument("--compress", action="store_true")
    t.set_defaults(func=_cmd_trace)

    t = trace_sub.add_parser("validate", help="validate a trace JSON")
    t.add_argument("input")
    t.set_defaults(func=_cmd_trace)

    t = trace_sub.add_parser("summary", help="summarize a trace JSON")
    t.add_argument("input")
    t.set_defaults(func=_cmd_trace)

    t = trace_sub.add_parser("chrome", help="convert to Chrome tracing format")
    t.add_argument("input")
    t.add_argument("output")
    t.set_defaults(func=_cmd_trace)

    t = trace_sub.add_parser("schema", help="print the trace JSON schema")
    t.set_defaults(func=_cmd_trace)

    p = sub.add_parser("lint", help="repo-aware static analysis")
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(p)
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "sanitize",
        help="run scenarios under replay + perturbed event ordering",
    )
    p.add_argument(
        "--strategy", action="append", default=None, metavar="NAME",
        help="strategy scenario to sanitize (repeatable; default: all)",
    )
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--iterations", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--loss-rate", type=float, default=0.0, metavar="P",
        help="per-train drop probability (retransmission implied)",
    )
    p.add_argument(
        "--codec", default=None, metavar="NAME",
        help="registered codec for the gradient stream",
    )
    _add_topology_argument(p)
    _add_agg_site_argument(p)
    p.add_argument(
        "--perturb-seeds", type=int, nargs="+", default=[1, 2, 3],
        metavar="S", help="tie-break seeds to try (default: 1 2 3)",
    )
    p.add_argument(
        "--diff-out", default=None, metavar="FILE",
        help="write the failing report (with trace diff) as JSON",
    )
    p.set_defaults(func=_cmd_sanitize)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
