"""The lint engine: files in, findings out.

The engine owns everything rule-agnostic — discovering files, parsing
them, building parent links, reading ``# repro-lint:`` suppression
comments, dispatching AST nodes to each rule's ``visit_*`` hooks, and
running the whole-program ``finish`` phase against the collected
:class:`~repro.analysis.project.ProjectFacts`.

Suppression comments
--------------------
``# repro-lint: disable=R1`` on a line suppresses that line's findings
for rule ``R1`` (codes and rule names both work, comma-separated, and
``all`` silences every rule).  ``# repro-lint: disable-next-line=R1``
suppresses the following line instead — useful above a multi-line call.
Anything after the code list is free-form rationale.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .project import ProjectFacts, collect_project_facts

_SUPPRESS_RE = re.compile(
    r"repro-lint:\s*disable(?P<next>-next-line)?=(?P<codes>[A-Za-z0-9_,-]+)"
)

#: Pseudo-rule code attached to unparseable files.
SYNTAX_ERROR_CODE = "E1"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    name: str
    path: str
    line: int
    col: int
    message: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "name": self.name,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule}[{self.name}] {self.message}"
        )


def _sort_key(finding: Finding) -> Tuple[str, int, int, str]:
    return (finding.path, finding.line, finding.col, finding.rule)


class FileContext:
    """Everything the engine knows about one source file."""

    def __init__(self, path: Path, display_path: str, source: str) -> None:
        self.path = path
        self.display_path = display_path
        self.source = source
        self.module = module_name(path)
        self.package = package_of(self.module)
        self.tree: Optional[ast.Module] = None
        self.syntax_error: Optional[SyntaxError] = None
        self._suppressions: Dict[int, Set[str]] = {}
        try:
            self.tree = ast.parse(source, filename=display_path)
        except SyntaxError as exc:
            self.syntax_error = exc
            return
        _link_parents(self.tree)
        self._suppressions = _parse_suppressions(source)

    def suppressed(self, line: int, code: str, name: str) -> bool:
        codes = self._suppressions.get(line)
        if not codes:
            return False
        return "ALL" in codes or code.upper() in codes or name.upper() in codes


def module_name(path: Path) -> str:
    """Dotted module name, anchored at the last ``repro`` path component.

    Files outside any ``repro`` tree (fixtures, scratch snippets) fall
    back to their stem, so rules scoped by package simply don't fire.
    """
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[anchor:]
    else:
        parts = parts[-1:]
    module = ".".join(parts)
    if module.endswith(".__init__"):
        module = module[: -len(".__init__")]
    return module


def package_of(module: str) -> str:
    """First package under ``repro`` ("core" for ``repro.core.codec``)."""
    head, _, rest = module.partition(".")
    if head != "repro" or not rest:
        return ""
    return rest.split(".", 1)[0]


def _link_parents(tree: ast.AST) -> None:
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child._repro_parent = parent  # type: ignore[attr-defined]


def parent_of(node: ast.AST) -> Optional[ast.AST]:
    """The AST parent of ``node`` (engine-linked; None at the root)."""
    return getattr(node, "_repro_parent", None)


def _parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of upper-cased suppressed codes/names."""
    suppressions: Dict[int, Set[str]] = {}

    def record(line: int, match: "re.Match[str]") -> None:
        target = line + 1 if match.group("next") else line
        codes = {
            c.strip().upper()
            for c in match.group("codes").split(",")
            if c.strip()
        }
        suppressions.setdefault(target, set()).update(codes)

    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                match = _SUPPRESS_RE.search(tok.string)
                if match:
                    record(tok.start[0], match)
    except (tokenize.TokenError, IndentationError):
        # Fall back to a plain line scan on files tokenize rejects.
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(text)
            if match and "#" in text[: match.start()]:
                record(lineno, match)
    return suppressions


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[Path] = []
    for path in paths:
        if path.is_dir():
            found.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            found.append(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    seen: Set[Path] = set()
    unique: List[Path] = []
    for path in found:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


class Reporter:
    """Collects findings, applying per-line suppressions."""

    def __init__(self) -> None:
        self.findings: List[Finding] = []
        self._contexts: Dict[str, FileContext] = {}

    def add_context(self, ctx: FileContext) -> None:
        self._contexts[ctx.display_path] = ctx

    def report(
        self,
        rule: "RuleProtocol",
        path: str,
        line: int,
        col: int,
        message: str,
    ) -> None:
        ctx = self._contexts.get(path)
        if ctx is not None and ctx.suppressed(line, rule.code, rule.name):
            return
        self.findings.append(
            Finding(
                rule=rule.code,
                name=rule.name,
                path=path,
                line=line,
                col=col,
                message=message,
            )
        )


class RuleContext:
    """Per-file view handed to rule ``visit_*`` hooks."""

    def __init__(
        self,
        file: FileContext,
        rule: "RuleProtocol",
        reporter: Reporter,
        project: ProjectFacts,
    ) -> None:
        self.file = file
        self.project = project
        self._rule = rule
        self._reporter = reporter

    @property
    def module(self) -> str:
        return self.file.module

    @property
    def package(self) -> str:
        return self.file.package

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return parent_of(node)

    def report(self, node: ast.AST, message: str) -> None:
        self._reporter.report(
            self._rule,
            self.file.display_path,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0) + 1,
            message,
        )


class RuleProtocol:
    """Structural interface the engine expects of a rule (see rules.base)."""

    code: str = "R?"
    name: str = "?"

    def applies_to(self, ctx: RuleContext) -> bool:  # pragma: no cover
        return True

    def begin_file(self, ctx: RuleContext) -> None:
        return None

    def finish(self, project: ProjectFacts, reporter: Reporter) -> None:
        return None


class LintRun:
    """One lint invocation over a set of files with a set of rules."""

    def __init__(self, rules: Optional[Sequence[RuleProtocol]] = None) -> None:
        if rules is None:
            from .rules import default_rules

            rules = default_rules()
        self.rules: List[RuleProtocol] = list(rules)
        self.files_checked = 0

    def run(self, paths: Sequence[Path]) -> List[Finding]:
        files = discover_files([Path(p) for p in paths])
        contexts: List[FileContext] = []
        reporter = Reporter()
        for path in files:
            display = _display_path(path)
            try:
                source = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                raise FileNotFoundError(f"cannot read {display}: {exc}")
            ctx = FileContext(path, display, source)
            contexts.append(ctx)
            reporter.add_context(ctx)
        self.files_checked = len(contexts)

        project = collect_project_facts(
            [(c.module, c.display_path, c.tree) for c in contexts if c.tree]
        )

        for ctx in contexts:
            if ctx.syntax_error is not None:
                reporter.findings.append(
                    Finding(
                        rule=SYNTAX_ERROR_CODE,
                        name="syntax-error",
                        path=ctx.display_path,
                        line=ctx.syntax_error.lineno or 1,
                        col=(ctx.syntax_error.offset or 0) + 1,
                        message=f"file does not parse: {ctx.syntax_error.msg}",
                    )
                )
                continue
            self._check_file(ctx, reporter, project)

        for rule in self.rules:
            rule.finish(project, reporter)

        return sorted(reporter.findings, key=_sort_key)

    def _check_file(
        self, ctx: FileContext, reporter: Reporter, project: ProjectFacts
    ) -> None:
        assert ctx.tree is not None
        active: List[Tuple[RuleProtocol, RuleContext]] = []
        for rule in self.rules:
            rule_ctx = RuleContext(ctx, rule, reporter, project)
            if rule.applies_to(rule_ctx):
                active.append((rule, rule_ctx))
        if not active:
            return
        for rule, rule_ctx in active:
            rule.begin_file(rule_ctx)
        for node in ast.walk(ctx.tree):
            hook_name = f"visit_{type(node).__name__}"
            for rule, rule_ctx in active:
                hook = getattr(rule, hook_name, None)
                if hook is not None:
                    hook(node, rule_ctx)


def _display_path(path: Path) -> str:
    try:
        return str(path.relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def lint_paths(
    paths: Iterable[object],
    rules: Optional[Sequence[RuleProtocol]] = None,
) -> Tuple[List[Finding], int]:
    """Lint ``paths``; returns ``(findings, files_checked)``."""
    run = LintRun(rules=rules)
    findings = run.run([Path(str(p)) for p in paths])
    return findings, run.files_checked
