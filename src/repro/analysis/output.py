"""Finding serialization: human-readable lines and a stable JSON schema.

The JSON document is versioned so CI consumers can rely on it:

.. code-block:: json

    {
      "version": 1,
      "files_checked": 42,
      "findings": [
        {"rule": "R1", "name": "dtype-discipline", "path": "...",
         "line": 10, "col": 5, "message": "..."}
      ],
      "counts": {"R1": 1}
    }
"""

from __future__ import annotations

import json
from typing import Dict, Sequence

from .engine import Finding

#: Bumped whenever a field is added/renamed in the JSON document.
JSON_SCHEMA_VERSION = 1


def finding_counts(findings: Sequence[Finding]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return counts


def format_human(findings: Sequence[Finding], files_checked: int) -> str:
    lines = [finding.render() for finding in findings]
    if findings:
        by_rule = ", ".join(
            f"{rule}: {count}"
            for rule, count in sorted(finding_counts(findings).items())
        )
        lines.append(
            f"{len(findings)} finding(s) in {files_checked} file(s) "
            f"({by_rule})"
        )
    else:
        lines.append(f"0 findings in {files_checked} file(s)")
    return "\n".join(lines)


def format_json(findings: Sequence[Finding], files_checked: int) -> str:
    document = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": files_checked,
        "findings": [finding.as_dict() for finding in findings],
        "counts": finding_counts(findings),
    }
    return json.dumps(document, indent=2, sort_keys=True)
