"""CLI plumbing shared by ``repro lint`` and ``python -m repro.analysis``."""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from .engine import lint_paths
from .output import format_human, format_json
from .rules import ALL_RULES, select_rules

#: Default lint target when no paths are given: the repro source tree
#: this installation runs from.
DEFAULT_TARGET = Path(__file__).resolve().parent.parent


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to an (sub)parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule codes/names to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list available rules and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint invocation; returns the process exit code."""
    if args.list_rules:
        for cls in ALL_RULES:
            print(f"{cls.code}  {cls.name:<22} {cls.description}")
        return 0
    rules = None
    if args.select:
        try:
            rules = select_rules(args.select.split(","))
        except KeyError as exc:
            raise SystemExit(f"--select: {exc.args[0]}")
    targets = args.paths or [DEFAULT_TARGET]
    try:
        findings, files_checked = lint_paths(targets, rules=rules)
    except FileNotFoundError as exc:
        raise SystemExit(str(exc))
    formatter = format_json if args.format == "json" else format_human
    print(formatter(findings, files_checked))
    return 1 if findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repo-aware static analysis for the INCEPTIONN "
        "reproduction",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))
