"""Repo-aware static analysis for the INCEPTIONN reproduction.

The runtime cannot cheaply police the invariants the codebase rests on:
gradients staying float32, every codec owning exactly one ToS byte, wire
sizes counted without allocating per-value containers, public APIs
carrying type annotations.  This package is an AST-based linter that
checks them *before* tests run:

* :mod:`repro.analysis.engine` — rule engine: file walking, suppression
  comments (``# repro-lint: disable=R1``), finding collection, JSON and
  human output.
* :mod:`repro.analysis.project` — whole-program facts (codec
  registrations, reserved ToS constants) gathered in a pre-pass so rules
  can cross-check files against each other.
* :mod:`repro.analysis.rules` — the rule set (R1..R5); each rule is a
  class with ``visit_*`` hooks, so later PRs add rules cheaply.

Run it as ``repro lint [paths]`` or ``python -m repro.analysis``.
"""

from .engine import Finding, LintRun, lint_paths
from .output import format_human, format_json
from .rules import ALL_RULES, Rule

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintRun",
    "Rule",
    "format_human",
    "format_json",
    "lint_paths",
]
