"""R7: exchange primitives may only be called from strategy plugins.

The strategy refactor confines the gradient-exchange primitives
(``ring_exchange``, ``hierarchical_exchange``, ``worker_exchange``,
``aggregator_exchange``) behind the :class:`GradientStrategy` layer:
the generic ``run_strategy`` driver never touches them, and every call
site lives inside a module that registers a strategy plugin (or inside
the primitive layer itself, which composes them).  A direct call from
anywhere else — a bench, the CLI, a perf model — bypasses the driver's
accounting and reintroduces the per-algorithm spawn paths the refactor
deleted.

Like R3, this is a cross-file property: which modules count as plugins
is discovered from ``register_strategy`` call/decorator sites during
the project pre-pass, and the per-file check only fires when the linted
tree registers at least one strategy (so fixture subtrees stay quiet).
"""

from __future__ import annotations

import ast

from ..engine import RuleContext
from ..project import EXCHANGE_FUNCTIONS
from .base import Rule, call_name


class StrategyCallsRule(Rule):
    """Confine exchange-primitive calls to strategy-plugin modules."""

    code = "R7"
    name = "strategy-exchange-calls"
    description = (
        "gradient-exchange primitives (ring_exchange, "
        "hierarchical_exchange, worker_exchange, aggregator_exchange) "
        "may only be called from modules that register a "
        "GradientStrategy plugin or define the primitives themselves"
    )

    def visit_Call(self, node: ast.Call, ctx: RuleContext) -> None:
        project = ctx.project
        if not project.strategy_registrars:
            # The linted tree has no strategy layer at all (fixture
            # snippets, partial subtrees) — nothing to confine.
            return
        callee = call_name(node)
        if callee is None or callee not in EXCHANGE_FUNCTIONS:
            return
        if ctx.module in project.strategy_registrars:
            return
        # The primitive layer composes its own functions (e.g. the
        # hierarchical exchange runs ring exchanges per group).
        definers = set()
        for modules in project.exchange_definers.values():
            definers.update(modules)
        if ctx.module in definers:
            return
        ctx.report(
            node,
            f"direct call to {callee}() outside a strategy plugin; "
            "route gradient exchange through run_strategy and a "
            "registered GradientStrategy instead",
        )
