"""R9 — every random draw must come from an explicitly seeded generator.

The distributed runs replicate RNG streams across simulated nodes with
``np.random.default_rng(spawn_key(seed, node, stream))`` (see
:mod:`repro.distributed.node`); the global NumPy singleton and the
stdlib ``random`` module are process-wide mutable state seeded from the
OS, so one draw from either silently couples results to import order
and host entropy.  Flags:

* legacy global-singleton draws: ``randn``, ``shuffle`` and friends on
  the ``np.random`` module itself (``default_rng`` and the
  ``np.random.Generator`` *type* are of course fine);
* the legacy ``RandomState`` generator; new code uses ``default_rng``;
* ``default_rng`` called *without* a seed argument — that seeds from
  OS entropy, defeating the point;
* stdlib ``random`` draws — module attribute or ``from random import
  shuffle`` style — in files that import the stdlib module;
* the same patterns inside docstrings — Quickstart/demo code blocks are
  what users copy first, so an unseeded draw there propagates the bug
  into every downstream script even though it never executes here.
"""

from __future__ import annotations

import ast
import re
from typing import Optional, Set

from ..engine import RuleContext
from .base import Rule

#: Draw/state functions on the legacy global NumPy singleton.
NUMPY_LEGACY_DRAWS = frozenset(
    {
        "beta",
        "binomial",
        "bytes",
        "chisquare",
        "choice",
        "dirichlet",
        "exponential",
        "gamma",
        "geometric",
        "laplace",
        "lognormal",
        "multinomial",
        "multivariate_normal",
        "normal",
        "permutation",
        "poisson",
        "rand",
        "randint",
        "randn",
        "random",
        "random_integers",
        "random_sample",
        "ranf",
        "sample",
        "seed",
        "shuffle",
        "standard_cauchy",
        "standard_exponential",
        "standard_gamma",
        "standard_normal",
        "standard_t",
        "uniform",
    }
)

#: Stdlib ``random`` module functions that draw or mutate global state.
STDLIB_RANDOM_FUNCTIONS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: Unseeded-draw patterns searched inside docstring demo code.
_DOCSTRING_PATTERNS = (
    re.compile(
        r"\b(?:np|numpy)\.random\.(%s)\s*\("
        % "|".join(sorted(NUMPY_LEGACY_DRAWS))
    ),
    re.compile(r"\b(?:np|numpy)\.random\.RandomState\s*\("),
    re.compile(r"\b(?:np|numpy)\.random\.default_rng\s*\(\s*\)"),
    re.compile(
        r"(?<![\w.])random\.(%s)\s*\("
        % "|".join(sorted(STDLIB_RANDOM_FUNCTIONS))
    ),
)


def _is_np_random(node: ast.AST) -> bool:
    """True for the ``np.random`` / ``numpy.random`` attribute chain."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    )


class SeededRngRule(Rule):
    code = "R9"
    name = "seeded-rng"
    description = (
        "random draws must come from np.random.default_rng(seed) / "
        "spawn_key streams, never the global singletons"
    )

    def __init__(self) -> None:
        #: Whether the current file imports stdlib ``random``.
        self._stdlib_random_imported = False
        #: Names bound by ``from random import ...`` in the current file.
        self._imported_random_fns: Set[str] = set()

    def begin_file(self, ctx: RuleContext) -> None:
        self._stdlib_random_imported = False
        self._imported_random_fns = set()
        assert ctx.file.tree is not None
        for node in ast.walk(ctx.file.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" and alias.asname is None:
                        self._stdlib_random_imported = True
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for alias in node.names:
                        if alias.name in STDLIB_RANDOM_FUNCTIONS:
                            self._imported_random_fns.add(
                                alias.asname or alias.name
                            )

    def visit_Call(self, node: ast.Call, ctx: RuleContext) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in self._imported_random_fns:
                ctx.report(
                    node,
                    f"stdlib random.{func.id}() draws from process-wide "
                    "state; use np.random.default_rng(seed)",
                )
            return
        if not isinstance(func, ast.Attribute):
            return
        if _is_np_random(func.value):
            if func.attr in NUMPY_LEGACY_DRAWS:
                ctx.report(
                    node,
                    f"np.random.{func.attr}() uses the unseeded global "
                    "singleton; draw from np.random.default_rng(seed) "
                    "(node streams: spawn_key(seed, node, stream))",
                )
            elif func.attr == "RandomState":
                ctx.report(
                    node,
                    "np.random.RandomState is the legacy generator; "
                    "use np.random.default_rng(seed)",
                )
            elif func.attr == "default_rng" and not (
                node.args or node.keywords
            ):
                ctx.report(
                    node,
                    "default_rng() without a seed draws entropy from "
                    "the OS; pass an explicit seed",
                )
        elif (
            isinstance(func.value, ast.Name)
            and func.value.id == "random"
            and self._stdlib_random_imported
            and func.attr in STDLIB_RANDOM_FUNCTIONS
        ):
            ctx.report(
                node,
                f"stdlib random.{func.attr}() draws from process-wide "
                "state; use np.random.default_rng(seed)",
            )

    # -- docstring demo code --------------------------------------------------

    def visit_Module(self, node: ast.Module, ctx: RuleContext) -> None:
        self._check_docstring(node, ctx)

    def visit_FunctionDef(
        self, node: ast.FunctionDef, ctx: RuleContext
    ) -> None:
        self._check_docstring(node, ctx)

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef, ctx: RuleContext
    ) -> None:
        self._check_docstring(node, ctx)

    def visit_ClassDef(self, node: ast.ClassDef, ctx: RuleContext) -> None:
        self._check_docstring(node, ctx)

    def _check_docstring(self, node: ast.AST, ctx: RuleContext) -> None:
        doc_node = self._docstring_node(node)
        if doc_node is None:
            return
        text = doc_node.value
        # Line ``i`` of the literal's text sits on source line
        # ``lineno + i`` (the first physical line holds the opening
        # quotes, and triple-quoted docstrings start with a newline).
        for offset, line in enumerate(text.splitlines()):
            for pattern in _DOCSTRING_PATTERNS:
                match = pattern.search(line)
                if match is not None:
                    location = _Location(
                        doc_node.lineno + offset, match.start()
                    )
                    ctx.report(
                        location,
                        "docstring demo code draws from an unseeded "
                        f"RNG ({match.group(0).rstrip('(')}...); examples "
                        "are what users copy — seed them with "
                        "default_rng",
                    )
                    break

    @staticmethod
    def _docstring_node(node: ast.AST) -> Optional[ast.Constant]:
        body = getattr(node, "body", None)
        if not body:
            return None
        first = body[0]
        if (
            isinstance(first, ast.Expr)
            and isinstance(first.value, ast.Constant)
            and isinstance(first.value.value, str)
        ):
            return first.value
        return None


class _Location:
    """A bare (line, col) carrier quacking like an AST node for report()."""

    def __init__(self, lineno: int, col_offset: int) -> None:
        self.lineno = lineno
        self.col_offset = col_offset
