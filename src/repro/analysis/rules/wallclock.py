"""R8 — wall-clock reads are banned inside the simulated stack.

Every result in this repository is pinned sha256-exact, which requires
runs to be pure functions of their seeds.  The event kernel owns the
only clock (``Simulation.now``, *simulated* seconds); a single
``time.time()`` or ``datetime.now()`` call anywhere in the stack makes
output depend on the host machine and the moment of execution, breaking
replay in ways no test pins catch until they flake.

Flags calls to:

* ``time.time`` / ``time.time_ns`` / ``time.perf_counter`` /
  ``time.monotonic`` / ``time.process_time`` (and their ``_ns``
  variants) / ``time.clock_gettime`` — via the module attribute or a
  bare name imported with ``from time import ...``;
* ``datetime.now`` / ``datetime.utcnow`` / ``datetime.today`` /
  ``date.today`` (including the ``datetime.datetime.now()`` spelling).

The legitimate consumers are artifact export and benchmarking: a trace
file may stamp *when it was written* because that metadata never feeds
back into simulation state, and the benchmark harness exists to measure
host wall-clock throughput.  ``repro.obs.export`` and ``repro.bench``
are therefore exempt; everything else must thread ``sim.now`` or go
without a timestamp.
"""

from __future__ import annotations

import ast
from typing import Set

from ..engine import RuleContext
from .base import Rule

#: Functions in the stdlib ``time`` module that read the host clock.
TIME_FUNCTIONS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
        "clock_gettime_ns",
    }
)

#: ``datetime``/``date`` constructors that capture the current moment.
DATETIME_FUNCTIONS = frozenset({"now", "utcnow", "today"})

#: Modules allowed to read the host clock: artifact export (timestamps
#: on trace files) and the wall-clock benchmark harness.
EXEMPT_MODULES = frozenset({"repro.obs.export", "repro.bench"})


class WallClockRule(Rule):
    code = "R8"
    name = "wall-clock"
    description = (
        "host clock reads (time.time, perf_counter, datetime.now, ...) "
        "break seed-exact replay; use Simulation.now for simulated time"
    )

    def __init__(self) -> None:
        #: Names bound by ``from time import ...`` in the current file.
        self._imported_time_fns: Set[str] = set()

    def applies_to(self, ctx: RuleContext) -> bool:
        return ctx.module not in EXEMPT_MODULES

    def begin_file(self, ctx: RuleContext) -> None:
        self._imported_time_fns = set()
        assert ctx.file.tree is not None
        for node in ast.walk(ctx.file.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in TIME_FUNCTIONS:
                        self._imported_time_fns.add(
                            alias.asname or alias.name
                        )

    def visit_Call(self, node: ast.Call, ctx: RuleContext) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in self._imported_time_fns:
                ctx.report(
                    node,
                    f"{func.id}() reads the host clock; simulated "
                    "components must use Simulation.now",
                )
            return
        if not isinstance(func, ast.Attribute):
            return
        if (
            func.attr in TIME_FUNCTIONS
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        ):
            ctx.report(
                node,
                f"time.{func.attr}() reads the host clock; simulated "
                "components must use Simulation.now",
            )
            return
        if func.attr in DATETIME_FUNCTIONS:
            owner = func.value
            owner_name = None
            if isinstance(owner, ast.Name):
                owner_name = owner.id
            elif isinstance(owner, ast.Attribute):
                owner_name = owner.attr
            if owner_name in ("datetime", "date"):
                ctx.report(
                    node,
                    f"{owner_name}.{func.attr}() captures wall-clock "
                    "time; results must be a pure function of seeds "
                    "(repro.obs.export is the one exempt module)",
                )
