"""The rule base class.

A rule is a class with:

* ``code``/``name``/``description`` — identity (code for suppression
  comments and ``--select``, name for humans);
* ``applies_to(ctx)`` — per-file gate (scope rules to packages here);
* ``begin_file(ctx)`` — optional per-file setup before the node walk
  (reset per-file state, pre-scan imports);
* ``visit_<NodeType>(node, ctx)`` hooks — called for every matching AST
  node of every applicable file, with ``ctx.report(node, message)`` to
  emit findings (suppressions are applied by the engine);
* ``finish(project, reporter)`` — optional whole-program phase run once
  after every file, for cross-file invariants.
"""

from __future__ import annotations

import ast
from typing import Optional

from ..engine import Reporter, RuleContext
from ..project import ProjectFacts


class Rule:
    """Base class every lint rule derives from."""

    code: str = "R?"
    name: str = "unnamed"
    description: str = ""

    def applies_to(self, ctx: RuleContext) -> bool:
        return True

    def begin_file(self, ctx: RuleContext) -> None:
        """Per-file setup hook, called before the node walk starts."""
        return None

    def finish(self, project: ProjectFacts, reporter: Reporter) -> None:
        return None

    def report_at(
        self,
        reporter: Reporter,
        path: str,
        line: int,
        col: int,
        message: str,
    ) -> None:
        """Emit a finding at an explicit location (finish-phase rules)."""
        reporter.report(self, path, line, col, message)


def call_name(node: ast.Call) -> Optional[str]:
    """Terminal name of a call target: ``np.zeros`` -> ``zeros``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def is_numpy_attr(node: ast.AST, attr: str) -> bool:
    """True for ``np.<attr>`` / ``numpy.<attr>`` references."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == attr
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    )
