"""R3 — codec registry / ToS code-space consistency.

The NIC comparator dispatches engines purely on the IP header's ToS
byte, so the codec registry's ToS assignments are a wire contract:

* every ``register_codec(..., tos=...)`` call must claim a statically
  resolvable, unique, one-byte, non-default ToS value;
* the paper's reserved ``0x28`` (``TOS_COMPRESS`` in ``network.packet``)
  belongs to the ``inceptionn`` codec and nobody else;
* no codec wire name is registered twice;
* every ``StreamProfile(codec="<name>")`` / ``profile_for("<name>")``
  literal must name a codec some linted file registers (checked only
  when the linted set contains registrations at all, so linting a
  subtree does not false-positive).
"""

from __future__ import annotations

import ast
from typing import Dict

from ..engine import Reporter, RuleContext
from ..project import CodecRegistration, ProjectFacts
from .base import Rule


class RegistryTosRule(Rule):
    code = "R3"
    name = "registry-tos"
    description = (
        "codec registrations must claim unique reserved ToS bytes and "
        "StreamProfile literals must name registered codecs"
    )

    def visit_Call(self, node: ast.Call, ctx: RuleContext) -> None:
        if not ctx.project.registrations:
            return
        callee = node.func
        callee_name = (
            callee.id
            if isinstance(callee, ast.Name)
            else callee.attr
            if isinstance(callee, ast.Attribute)
            else None
        )
        codec_expr: ast.expr | None = None
        if callee_name == "StreamProfile":
            if node.args:
                codec_expr = node.args[0]
            for kw in node.keywords:
                if kw.arg == "codec":
                    codec_expr = kw.value
        elif callee_name == "profile_for":
            if node.args:
                codec_expr = node.args[0]
            for kw in node.keywords:
                if kw.arg == "name":
                    codec_expr = kw.value
        if (
            isinstance(codec_expr, ast.Constant)
            and isinstance(codec_expr.value, str)
            and codec_expr.value not in ctx.project.registered_names
        ):
            ctx.report(
                node,
                f"codec {codec_expr.value!r} is not registered anywhere "
                f"in the linted tree",
            )

    def finish(self, project: ProjectFacts, reporter: Reporter) -> None:
        seen_tos: Dict[int, CodecRegistration] = {}
        seen_names: Dict[str, CodecRegistration] = {}
        for reg in project.registrations:
            label = reg.codec_name or reg.codec_class or "<unknown codec>"
            if not reg.tos_resolvable:
                self.report_at(
                    reporter,
                    reg.path,
                    reg.line,
                    reg.col,
                    f"ToS for codec {label!r} is not statically resolvable; "
                    f"use an int literal or a module constant",
                )
            elif reg.tos is not None:
                self._check_tos(project, reporter, reg, label)
                prior = seen_tos.get(reg.tos)
                if prior is not None:
                    prior_label = (
                        prior.codec_name or prior.codec_class or "<unknown>"
                    )
                    self.report_at(
                        reporter,
                        reg.path,
                        reg.line,
                        reg.col,
                        f"ToS {reg.tos:#04x} already claimed by "
                        f"{prior_label!r} at {prior.path}:{prior.line}",
                    )
                else:
                    seen_tos[reg.tos] = reg
            if reg.codec_name is not None:
                prior = seen_names.get(reg.codec_name)
                if prior is not None:
                    self.report_at(
                        reporter,
                        reg.path,
                        reg.line,
                        reg.col,
                        f"codec name {reg.codec_name!r} already registered "
                        f"at {prior.path}:{prior.line}",
                    )
                else:
                    seen_names[reg.codec_name] = reg

    def _check_tos(
        self,
        project: ProjectFacts,
        reporter: Reporter,
        reg: CodecRegistration,
        label: str,
    ) -> None:
        assert reg.tos is not None
        if not 0 <= reg.tos <= 0xFF:
            self.report_at(
                reporter,
                reg.path,
                reg.line,
                reg.col,
                f"ToS {reg.tos:#x} for {label!r} does not fit one byte",
            )
            return
        if reg.tos == project.tos_default:
            self.report_at(
                reporter,
                reg.path,
                reg.line,
                reg.col,
                f"codec {label!r} claims the default ToS "
                f"{project.tos_default:#04x} reserved for raw traffic",
            )
        if reg.tos == project.tos_compress and reg.codec_name not in (
            None,
            "inceptionn",
        ):
            self.report_at(
                reporter,
                reg.path,
                reg.line,
                reg.col,
                f"ToS {project.tos_compress:#04x} is the paper's reserved "
                f"INCEPTIONN stream; {label!r} may not claim it",
            )
        if reg.codec_name == "inceptionn" and reg.tos != project.tos_compress:
            self.report_at(
                reporter,
                reg.path,
                reg.line,
                reg.col,
                f"'inceptionn' must keep the paper's reserved ToS "
                f"{project.tos_compress:#04x}, not {reg.tos:#04x}",
            )
