"""The lint rule set.

Adding a rule: write a module in this package with a :class:`Rule`
subclass, give it the next free ``R<n>`` code, and append it to
``ALL_RULES``.  The engine, CLI ``--select``, suppression comments, and
the JSON output pick it up automatically.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Type

from .agg_site import AggregationSiteRule
from .annotations import AnnotationsRule
from .base import Rule
from .bits import BitAccountingRule
from .deprecated import DeprecatedApiRule
from .dtype import DtypeDisciplineRule
from .mutable_defaults import MutableDefaultsRule
from .ordering import IterationOrderRule
from .registry_tos import RegistryTosRule
from .retired import RetiredApiRule
from .rng import SeededRngRule
from .strategy_calls import StrategyCallsRule
from .wallclock import WallClockRule

#: Every registered rule class, in code order.
ALL_RULES: Sequence[Type[Rule]] = (
    DtypeDisciplineRule,
    DeprecatedApiRule,
    RegistryTosRule,
    BitAccountingRule,
    AnnotationsRule,
    RetiredApiRule,
    StrategyCallsRule,
    WallClockRule,
    SeededRngRule,
    IterationOrderRule,
    MutableDefaultsRule,
    AggregationSiteRule,
)


def default_rules() -> List[Rule]:
    """Fresh instances of every rule with default configuration."""
    return [cls() for cls in ALL_RULES]


def rules_by_code() -> Dict[str, Type[Rule]]:
    """Map upper-cased codes *and* names to rule classes."""
    table: Dict[str, Type[Rule]] = {}
    for cls in ALL_RULES:
        table[cls.code.upper()] = cls
        table[cls.name.upper()] = cls
    return table


def select_rules(selection: Sequence[str]) -> List[Rule]:
    """Instantiate the rules named by codes/names in ``selection``."""
    table = rules_by_code()
    chosen: List[Rule] = []
    seen = set()
    for entry in selection:
        key = entry.strip().upper()
        if not key:
            continue
        if key not in table:
            known = ", ".join(cls.code for cls in ALL_RULES)
            raise KeyError(f"unknown rule {entry!r}; known rules: {known}")
        cls = table[key]
        if cls.code not in seen:
            seen.add(cls.code)
            chosen.append(cls())
    return chosen


__all__ = [
    "ALL_RULES",
    "AggregationSiteRule",
    "AnnotationsRule",
    "BitAccountingRule",
    "DeprecatedApiRule",
    "DtypeDisciplineRule",
    "IterationOrderRule",
    "MutableDefaultsRule",
    "RegistryTosRule",
    "RetiredApiRule",
    "Rule",
    "SeededRngRule",
    "StrategyCallsRule",
    "WallClockRule",
    "default_rules",
    "rules_by_code",
    "select_rules",
]
