"""R11 — public functions must not use mutable default arguments.

Default values evaluate once at ``def`` time and are shared by every
call.  A ``trains=[]`` default silently accumulates state across calls
— across *simulated nodes*, in this codebase, which is exactly the kind
of cross-node aliasing the transport layer goes out of its way to
prevent (endpoints copy payloads for this reason).  On a public API the
sharp edge is exported to every caller, so the fix is the standard
``None`` sentinel:

.. code-block:: python

    def send(self, packets: Optional[List[int]] = None) -> None:
        packets = [] if packets is None else packets

Flags list/dict/set displays and comprehensions, and bare
``list()``/``dict()``/``set()``/``bytearray()``/``collections.*``
constructor calls, as defaults of any function or method whose name
does not start with an underscore.  Private helpers are left alone —
their call sites are all local, so a deliberate shared default is
visible where it matters.
"""

from __future__ import annotations

import ast
from typing import Union

from ..engine import RuleContext
from .base import Rule, call_name

#: Constructors producing a fresh mutable container.
_MUTABLE_CONSTRUCTORS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "deque",
        "defaultdict",
        "OrderedDict",
        "Counter",
    }
)

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(
        node,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return True
    if isinstance(node, ast.Call):
        return call_name(node) in _MUTABLE_CONSTRUCTORS
    return False


class MutableDefaultsRule(Rule):
    code = "R11"
    name = "mutable-defaults"
    description = (
        "mutable default arguments alias state across calls (and across "
        "simulated nodes); default to None and construct inside"
    )

    def visit_FunctionDef(
        self, node: ast.FunctionDef, ctx: RuleContext
    ) -> None:
        self._check(node, ctx)

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef, ctx: RuleContext
    ) -> None:
        self._check(node, ctx)

    def _check(self, node: _FunctionNode, ctx: RuleContext) -> None:
        if node.name.startswith("_"):
            return
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                kind = type(default).__name__.lower()
                ctx.report(
                    default,
                    f"mutable default ({kind}) on public "
                    f"{'method' if self._is_method(node, ctx) else 'function'} "
                    f"{node.name}() is shared across every call; use "
                    "None and construct inside the body",
                )

    @staticmethod
    def _is_method(node: _FunctionNode, ctx: RuleContext) -> bool:
        return isinstance(ctx.parent(node), ast.ClassDef)
