"""R2 — no new call sites of the deprecated compression shims.

PR 1 replaced the ``compressible: bool`` threading and the
``ClusterConfig.compression`` flag with :class:`repro.core.StreamProfile`.
The shims survive for external callers — with a ``DeprecationWarning`` —
but in-repo code must use profiles, or the deprecation can never
complete.  Flags:

* any call passing a ``compressible=`` keyword argument;
* ``ClusterConfig(..., compression=...)`` construction.

The shim module itself (``repro.transport.endpoint``, which defines the
keywords and emits the warning) is exempt.
"""

from __future__ import annotations

import ast

from ..engine import RuleContext
from .base import Rule

#: Modules that implement the shims and may keep mentioning them.
SHIM_MODULES = frozenset({"repro.transport.endpoint"})


class DeprecatedApiRule(Rule):
    code = "R2"
    name = "deprecated-api"
    description = (
        "in-repo code must pass StreamProfile, not the deprecated "
        "compressible=/ClusterConfig(compression=...) shims"
    )

    def applies_to(self, ctx: RuleContext) -> bool:
        return ctx.module not in SHIM_MODULES

    def visit_Call(self, node: ast.Call, ctx: RuleContext) -> None:
        for kw in node.keywords:
            if kw.arg == "compressible":
                ctx.report(
                    node,
                    "deprecated compressible= keyword; pass a "
                    "StreamProfile via profile=",
                )
            elif kw.arg == "compression" and self._is_cluster_config(node):
                ctx.report(
                    node,
                    "deprecated ClusterConfig(compression=...); pass "
                    "profile=inceptionn_profile(...) instead",
                )

    @staticmethod
    def _is_cluster_config(node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Name):
            return func.id == "ClusterConfig"
        if isinstance(func, ast.Attribute):
            return func.attr == "ClusterConfig"
        return False
