"""R12: decompress → sum → recompress belongs to the aggregation layer.

The aggregation-site refactor gives every homomorphic codec a
compressed-domain algebra (``aggregate_compressed``) and routes both
endpoint and in-network reduction through it.  A function elsewhere
that decompresses payloads, sums the reconstructions, and re-encodes
the total silently reimplements that algebra — and drifts from it the
moment a codec changes its framing, breaking the switch/endpoint parity
pins.

Like R7, this is a cross-file property: the exempt layer is discovered
during the project pre-pass — modules defining an aggregation entry
point (``aggregate_compressed``, ``aggregate_endpoint``,
``combine_parts``) and codec-implementation modules (defining both
``compress`` and ``decompress``; error feedback legitimately
reconstructs and re-encodes inside a codec).  The per-file check only
fires when the linted tree has an aggregation layer at all, so fixture
subtrees stay quiet.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..engine import RuleContext
from .base import Rule, call_name

#: Calls that realize "sum the reconstructions".
_SUM_CALLS = {"sum", "add", "reduce"}


def _word_match(name: Optional[str], word: str) -> bool:
    """``name`` is ``word`` or carries it as an underscore-delimited part.

    Catches ``decompress``, ``codec_decompress``, ``decompress_block`` —
    but not ``decompression_time`` (a cost model, not a payload op).
    """
    if name is None:
        return False
    return (
        name == word
        or name.startswith(word + "_")
        or name.endswith("_" + word)
        or f"_{word}_" in name
    )


def _is_decompress(name: Optional[str]) -> bool:
    return _word_match(name, "decompress")


def _is_compress(name: Optional[str]) -> bool:
    return _word_match(name, "compress") and not _is_decompress(name)


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class AggregationSiteRule(Rule):
    """Confine inline compressed-domain summing to the aggregation layer."""

    code = "R12"
    name = "aggregation-site-calls"
    description = (
        "functions that decompress payloads, sum them, and recompress "
        "must live in the aggregation-site layer (modules defining "
        "aggregate_compressed/aggregate_endpoint/combine_parts) or in a "
        "codec implementation; everywhere else, use "
        "StreamProfile.aggregate_compressed"
    )

    def _check_function(
        self, node: ast.AST, ctx: RuleContext
    ) -> None:
        project = ctx.project
        if not project.aggregation_definers:
            # The linted tree has no aggregation layer (fixture
            # snippets, partial subtrees) — nothing to confine.
            return
        if ctx.module in project.aggregation_definers:
            return
        if ctx.module in project.codec_definers:
            return
        decompress_seen = False
        summed = False
        recompress: Optional[ast.Call] = None
        for sub in _own_nodes(node):
            if isinstance(sub, ast.Call):
                callee = call_name(sub)
                if _is_decompress(callee):
                    decompress_seen = True
                elif _is_compress(callee):
                    recompress = recompress or sub
                elif callee in _SUM_CALLS:
                    summed = True
            elif isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Add):
                summed = True
            elif isinstance(sub, ast.AugAssign) and isinstance(
                sub.op, ast.Add
            ):
                summed = True
        if decompress_seen and summed and recompress is not None:
            ctx.report(
                recompress,
                "inline decompress -> sum -> recompress outside the "
                "aggregation-site layer; use "
                "StreamProfile.aggregate_compressed (or the transport "
                "aggregation API) so compressed-domain reduction stays "
                "in one place",
            )

    def visit_FunctionDef(
        self, node: ast.FunctionDef, ctx: RuleContext
    ) -> None:
        self._check_function(node, ctx)

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef, ctx: RuleContext
    ) -> None:
        self._check_function(node, ctx)
