"""R10 — unordered collections must not feed order-sensitive consumers.

Python sets iterate in hash order.  For strings that order depends on
``PYTHONHASHSEED``, so a ``for`` loop over a set of names can differ
between two invocations of the *same* binary — the classic source of
unreproducible event schedules, packet-train layouts, and registry
listings.  Dict iteration is insertion-ordered and therefore
deterministic, with one exception this rule also polices: module-level
registry dicts (populated by subscript stores from anywhere, often at
import time) leak *import order* into their listing order, so user-
visible scans over them must sort.

Flags, unless the expression is wrapped in ``sorted(...)``:

* ``for x in <set>`` / comprehensions over ``<set>`` where the
  iterable is statically set-typed: a set display or comprehension,
  ``set(...)``/``frozenset(...)``, the named set-algebra methods
  (``.union(...)`` etc.), a module-level name bound to a set, or an
  attribute whose name is annotated ``Set[...]`` anywhere in the
  project (cross-file taint via the project-facts pre-pass);
* ``list(<set>)`` / ``tuple(<set>)`` / ``enumerate(<set>)`` /
  ``", ".join(<set>)`` — materializations that freeze the accidental
  order;
* iteration over a module-level registry dict (or its ``.items()`` /
  ``.keys()`` / ``.values()``).

Order-insensitive reductions (``len``, ``sum``, ``min``, ``max``,
``any``, ``all``, membership tests) are untouched — sets are the right
tool there.
"""

from __future__ import annotations

import ast
from typing import Optional, Set

from ..engine import RuleContext
from ..project import is_set_expr
from .base import Rule

#: Call wrappers that freeze iteration order into a sequence.
_ORDERED_WRAPPERS = frozenset({"list", "tuple", "enumerate"})


class IterationOrderRule(Rule):
    code = "R10"
    name = "iteration-order"
    description = (
        "sets (and registry dicts) iterate in hash/import order; wrap "
        "order-sensitive iteration in sorted(...)"
    )

    def __init__(self) -> None:
        #: Module-level set names of the file being checked.
        self._set_globals: Set[str] = set()
        #: Module-level registry-dict names of the file being checked.
        self._registry_globals: Set[str] = set()

    def begin_file(self, ctx: RuleContext) -> None:
        self._set_globals = set(
            ctx.project.set_globals.get(ctx.module, ())
        )
        self._registry_globals = set(
            ctx.project.registry_globals.get(ctx.module, ())
        )

    # -- iteration contexts ---------------------------------------------------

    def visit_For(self, node: ast.For, ctx: RuleContext) -> None:
        self._check_iterable(node.iter, ctx, "for loop")

    def visit_comprehension(
        self, node: ast.comprehension, ctx: RuleContext
    ) -> None:
        self._check_iterable(node.iter, ctx, "comprehension")

    def visit_Call(self, node: ast.Call, ctx: RuleContext) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _ORDERED_WRAPPERS:
            if node.args:
                self._check_iterable(node.args[0], ctx, f"{func.id}()")
        elif isinstance(func, ast.Attribute) and func.attr == "join":
            if node.args:
                self._check_iterable(node.args[0], ctx, "str.join()")

    # -- classification -------------------------------------------------------

    def _check_iterable(
        self, node: ast.expr, ctx: RuleContext, context: str
    ) -> None:
        reason = self._unordered_reason(node, ctx)
        if reason is not None:
            ctx.report(
                node,
                f"{context} iterates {reason} — the order is not "
                "deterministic across runs; wrap it in sorted(...)",
            )

    def _unordered_reason(
        self, node: ast.expr, ctx: RuleContext
    ) -> Optional[str]:
        if is_set_expr(node):
            return "a set expression"
        if isinstance(node, ast.Name):
            if node.id in self._set_globals:
                return f"the module-level set {node.id!r}"
            if node.id in self._registry_globals:
                return f"the registry dict {node.id!r} (import order)"
            return None
        if isinstance(node, ast.Attribute):
            if node.attr in ctx.project.set_attrs:
                return f"the set-typed attribute {node.attr!r}"
            return None
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in ("items", "keys", "values"):
                owner = node.func.value
                if (
                    isinstance(owner, ast.Name)
                    and owner.id in self._registry_globals
                ):
                    return (
                        f"the registry dict {owner.id!r} (import order)"
                    )
        return None
