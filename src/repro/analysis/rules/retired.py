"""R6 — the pre-WireMessage send API is gone; don't reintroduce it.

PR 5 unified the three send paths into one packet-granular
:class:`repro.transport.wire.WireMessage` pipeline and *removed* (not
deprecated) the old sized-send side path.  Unlike R2's shims there is
nothing left to call — any reappearance is a regression toward the
split-path design.  Flags:

* any call whose target is named ``isend_sized`` (gone; use
  ``Endpoint.build_message(..., nbytes=...)`` + ``isend_message``);
* any call passing a ``compression_ratio=`` keyword (the retired
  parameter; the builder takes ``ratio=``).

The *function* :func:`repro.core.compression_ratio` is still the
statistics helper it always was — it takes positional arguments, so
only the keyword form is banned.
"""

from __future__ import annotations

import ast

from ..engine import RuleContext
from .base import Rule, call_name


class RetiredApiRule(Rule):
    code = "R6"
    name = "retired-api"
    description = (
        "the retired isend_sized/compression_ratio= send API must not "
        "reappear; build WireMessages via build_message(nbytes=, ratio=)"
    )

    def visit_Call(self, node: ast.Call, ctx: RuleContext) -> None:
        if call_name(node) == "isend_sized":
            ctx.report(
                node,
                "isend_sized was retired by the WireMessage pipeline; "
                "use ep.isend_message(ep.build_message(dst, nbytes=...))",
            )
        for kw in node.keywords:
            if kw.arg == "compression_ratio":
                ctx.report(
                    node,
                    "compression_ratio= was retired with isend_sized; "
                    "pass ratio= to build_message instead",
                )
