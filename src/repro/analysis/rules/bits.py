"""R4 — bit-accounting functions stay allocation-free.

Wire-size claims (paper Table III, Figs 8-10) are computed by functions
named ``*_bits``/``*_nbits``.  They run on the hot path — per message,
per group — and PR 1 established the ``np.bincount``-style vectorized
counting idiom for them.  Building Python containers (lists, dicts,
sets, comprehensions) per call re-introduces the per-value Python loop
the idiom exists to avoid, so this rule bans container construction
inside any function whose name matches.  Generator expressions and
tuples are allowed: they are O(1) or fixed-size.
"""

from __future__ import annotations

import ast
from typing import Union

from ..engine import RuleContext
from .base import Rule

_CONTAINER_NODES = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
)

_CONTAINER_BUILTINS = frozenset({"list", "dict", "set"})

_FunctionDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _is_bits_function(name: str) -> bool:
    return name.endswith("_bits") or name.endswith("_nbits")


class BitAccountingRule(Rule):
    code = "R4"
    name = "bit-accounting"
    description = (
        "*_bits/*_nbits functions must count vectorized (np.bincount "
        "style), not allocate Python containers"
    )

    def visit_FunctionDef(
        self, node: ast.FunctionDef, ctx: RuleContext
    ) -> None:
        self._check(node, ctx)

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef, ctx: RuleContext
    ) -> None:
        self._check(node, ctx)

    def _check(self, node: _FunctionDef, ctx: RuleContext) -> None:
        if not _is_bits_function(node.name):
            return
        for child in ast.walk(node):
            if child is node:
                continue
            # Nested defs get their own visit; don't double-report.
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(child, _CONTAINER_NODES):
                kind = type(child).__name__
                ctx.report(
                    child,
                    f"{kind} allocated inside bit-accounting function "
                    f"{node.name!r}; count with vectorized ops "
                    f"(np.bincount / lookup tables) instead",
                )
            elif isinstance(child, ast.Call):
                func = child.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in _CONTAINER_BUILTINS
                ):
                    ctx.report(
                        child,
                        f"{func.id}() allocated inside bit-accounting "
                        f"function {node.name!r}; count with vectorized "
                        f"ops instead",
                    )
