"""R5 — public functions in ``src/repro`` carry type annotations.

The mypy gate enforces ``disallow_untyped_defs`` on the four packages
the wire contract lives in (core, network, hardware, transport); this
rule extends the discipline repo-wide for the *public* surface, and —
unlike mypy — runs with zero third-party dependencies, so the check is
available everywhere the code is.

A function is public when its name does not start with ``_`` and it is
defined at module or class level (nested helpers are implementation
detail).  It must annotate its return type and every parameter;
``self``/``cls`` receivers are exempt.

``strict=True`` (used by the test suite to mirror mypy's
``disallow_untyped_defs`` on the strict packages) additionally covers
private and dunder functions.

The rule also guards the network package's documentation discipline:
every module in ``docstring_packages`` (default: ``network``) must open
with a non-empty module docstring — the place each file states its
delivery/ordering/time invariants (see DESIGN.md "Multi-tier fabric").
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Tuple, Union

from ..engine import RuleContext
from .base import Rule

_FunctionDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _decorator_names(node: _FunctionDef) -> List[str]:
    names = []
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, ast.Attribute):
            names.append(target.attr)
    return names


class AnnotationsRule(Rule):
    code = "R5"
    name = "public-annotations"
    description = (
        "public functions must annotate their parameters and return type"
    )

    def __init__(
        self,
        strict: bool = False,
        packages: Optional[Sequence[str]] = None,
        docstring_packages: Sequence[str] = ("network",),
    ) -> None:
        self.strict = strict
        self.packages = tuple(packages) if packages is not None else None
        self.docstring_packages = tuple(docstring_packages)

    def applies_to(self, ctx: RuleContext) -> bool:
        if self.packages is None:
            return True
        return (
            ctx.package in self.packages
            or ctx.package in self.docstring_packages
        )

    def visit_Module(self, node: ast.Module, ctx: RuleContext) -> None:
        if ctx.package not in self.docstring_packages:
            return
        doc = ast.get_docstring(node)
        if doc is None or not doc.strip():
            ctx.report(
                node,
                f"module {ctx.module!r} must open with a docstring stating "
                "its invariants (required throughout the "
                f"{ctx.package!r} package)",
            )

    def visit_FunctionDef(
        self, node: ast.FunctionDef, ctx: RuleContext
    ) -> None:
        self._check(node, ctx)

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef, ctx: RuleContext
    ) -> None:
        self._check(node, ctx)

    def _check(self, node: _FunctionDef, ctx: RuleContext) -> None:
        if self.packages is not None and ctx.package not in self.packages:
            # This file is visited only for the docstring requirement.
            return
        parent = ctx.parent(node)
        nested = isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef))
        if not self.strict:
            if node.name.startswith("_") or nested:
                return
        is_method = isinstance(parent, ast.ClassDef)
        missing = _missing_annotations(node, is_method)
        if missing:
            ctx.report(
                node,
                f"function {node.name!r} is missing annotations for: "
                f"{', '.join(missing)}",
            )


def _missing_annotations(node: _FunctionDef, is_method: bool) -> List[str]:
    missing: List[str] = []
    args = node.args
    positional: Tuple[ast.arg, ...] = tuple(args.posonlyargs) + tuple(args.args)
    skip_receiver = (
        is_method
        and "staticmethod" not in _decorator_names(node)
        and bool(positional)
        and positional[0].arg in ("self", "cls")
    )
    if skip_receiver:
        positional = positional[1:]
    for arg in positional:
        if arg.annotation is None:
            missing.append(arg.arg)
    for arg in args.kwonlyargs:
        if arg.annotation is None:
            missing.append(arg.arg)
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append(f"*{args.vararg.arg}")
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append(f"**{args.kwarg.arg}")
    if node.returns is None:
        missing.append("return")
    return missing
