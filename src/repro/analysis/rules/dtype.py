"""R1 — dtype discipline on the gradient path.

Everything the paper's codec touches is float32 in (-1, 1) (Sec. V-A);
a float64 array sneaking into the gradient path silently doubles wire
sizes and breaks the bit-exact hardware validation.  NumPy's default
dtype for fresh arrays is float64, so inside gradient-path packages this
rule requires every array construction to say what it means:

* ``np.zeros/ones/empty/full/array/asarray/ascontiguousarray/arange/
  linspace/fromiter(...)`` must pass ``dtype=`` explicitly (any dtype —
  index arrays are fine, the point is that the choice is visible) or be
  immediately ``.astype(...)``-wrapped;
* explicit float64 is flagged wherever it appears: ``dtype=np.float64``
  / ``dtype=float`` / ``dtype="float64"`` in any call, ``.astype`` to
  any of those, and ``np.float64(...)`` scalars.  Measurement code that
  genuinely wants double precision carries a suppression comment.
"""

from __future__ import annotations

import ast

from ..engine import RuleContext
from .base import Rule, is_numpy_attr

#: Packages whose modules carry gradient values end to end.
GRADIENT_PATH_PACKAGES = (
    "core",
    "transport",
    "distributed",
    "hardware",
    "baselines",
    "dnn",
)

#: NumPy constructors that default to float64 (or an unstated dtype).
DEFAULT_DTYPE_CONSTRUCTORS = frozenset(
    {
        "zeros",
        "ones",
        "empty",
        "full",
        "array",
        "asarray",
        "ascontiguousarray",
        "arange",
        "linspace",
        "fromiter",
    }
)

_FLOAT64_STRINGS = frozenset({"float64", "double", "f8", "<f8", ">f8", "=f8"})


def _is_float64_dtype(node: ast.AST) -> bool:
    if isinstance(node, ast.Name) and node.id == "float":
        return True
    if is_numpy_attr(node, "float64") or is_numpy_attr(node, "double"):
        return True
    if isinstance(node, ast.Constant) and node.value in _FLOAT64_STRINGS:
        return True
    return False


class DtypeDisciplineRule(Rule):
    code = "R1"
    name = "dtype-discipline"
    description = (
        "gradient-path array constructions must state an explicit dtype "
        "and must never name float64"
    )

    def applies_to(self, ctx: RuleContext) -> bool:
        return ctx.package in GRADIENT_PATH_PACKAGES

    def visit_Call(self, node: ast.Call, ctx: RuleContext) -> None:
        self._check_explicit_float64(node, ctx)
        self._check_constructor_dtype(node, ctx)

    def _check_explicit_float64(self, node: ast.Call, ctx: RuleContext) -> None:
        func = node.func
        # np.float64(x) scalars.
        if is_numpy_attr(func, "float64") or is_numpy_attr(func, "double"):
            ctx.report(node, "float64 scalar constructed on the gradient path")
            return
        # x.astype(float64-ish)
        if isinstance(func, ast.Attribute) and func.attr == "astype":
            target = node.args[0] if node.args else None
            for kw in node.keywords:
                if kw.arg == "dtype":
                    target = kw.value
            if target is not None and _is_float64_dtype(target):
                ctx.report(node, "cast to float64 on the gradient path")
            return
        # dtype=float64-ish in any call.
        for kw in node.keywords:
            if kw.arg == "dtype" and _is_float64_dtype(kw.value):
                ctx.report(node, "dtype=float64 on the gradient path")

    def _check_constructor_dtype(
        self, node: ast.Call, ctx: RuleContext
    ) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in DEFAULT_DTYPE_CONSTRUCTORS:
            return
        if not (
            isinstance(func.value, ast.Name)
            and func.value.id in ("np", "numpy")
        ):
            return
        if any(kw.arg == "dtype" for kw in node.keywords):
            return
        # np.arange(n).astype(np.float32): the wrapping cast is the
        # explicit dtype — skip, the astype target is checked above.
        parent = ctx.parent(node)
        if isinstance(parent, ast.Attribute) and parent.attr == "astype":
            return
        ctx.report(
            node,
            f"np.{func.attr}(...) without an explicit dtype= on the "
            f"gradient path (NumPy defaults to float64)",
        )
