"""Whole-program facts gathered before per-file rules run.

Registry/ToS consistency (rule R3) is not a single-file property: codec
classes declare their wire name in one module, ``register_codec`` calls
claim ToS bytes in another, and ``network.packet`` owns the reserved
constants.  This pre-pass walks every parsed file once and records the
cross-file facts rules need, resolving simple constant references
(``tos=TOS_COMPRESS``) statically.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Fallbacks when the linted file set does not include network/packet.py
#: (e.g. fixture trees in tests); values mirror the paper's contract.
DEFAULT_TOS_DEFAULT = 0x00
DEFAULT_TOS_COMPRESS = 0x28

#: The gradient-exchange primitives owned by the strategy layer.  Rule
#: R7 confines direct calls to these to strategy-plugin modules (ones
#: that register a :class:`GradientStrategy`) and to the modules that
#: define the primitives themselves.
EXCHANGE_FUNCTIONS = (
    "ring_exchange",
    "hierarchical_exchange",
    "worker_exchange",
    "aggregator_exchange",
)


@dataclass(frozen=True)
class CodecRegistration:
    """One ``register_codec(SomeCodec(), tos=...)`` call site."""

    codec_class: Optional[str]
    codec_name: Optional[str]
    tos: Optional[int]
    tos_resolvable: bool
    path: str
    line: int
    col: int


@dataclass
class ProjectFacts:
    """Cross-file facts available to every rule's ``finish`` phase."""

    tos_default: int = DEFAULT_TOS_DEFAULT
    tos_compress: int = DEFAULT_TOS_COMPRESS
    registrations: List[CodecRegistration] = field(default_factory=list)
    #: ClassName -> wire name, for classes declaring ``name = "<str>"``.
    codec_class_names: Dict[str, str] = field(default_factory=dict)
    #: Modules that register a GradientStrategy (decorator or call).
    strategy_registrars: Set[str] = field(default_factory=set)
    #: Exchange-primitive name -> modules defining a function of that
    #: name (the primitive layer itself, exempt from R7).
    exchange_definers: Dict[str, Set[str]] = field(default_factory=dict)

    @property
    def registered_names(self) -> Set[str]:
        return {
            r.codec_name for r in self.registrations if r.codec_name is not None
        }


def _terminal_name(node: ast.AST) -> Optional[str]:
    """Terminal name of a reference: ``pkg.register_strategy`` -> attr."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        # ``@register_strategy(...)``-style decorator factories.
        return _terminal_name(node.func)
    return None


def _int_constant(node: ast.AST) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        if not isinstance(node.value, bool):
            return node.value
    return None


def _module_int_constants(tree: ast.Module) -> Dict[str, int]:
    constants: Dict[str, int] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            value = _int_constant(stmt.value)
            if isinstance(target, ast.Name) and value is not None:
                constants[target.id] = value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value = _int_constant(stmt.value)
            if isinstance(stmt.target, ast.Name) and value is not None:
                constants[stmt.target.id] = value
    return constants


def _class_wire_name(node: ast.ClassDef) -> Optional[str]:
    for stmt in node.body:
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target, value = stmt.target, stmt.value
        if (
            isinstance(target, ast.Name)
            and target.id == "name"
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
        ):
            return value.value
    return None


def _resolve_tos(
    node: Optional[ast.expr],
    local_constants: Dict[str, int],
    global_constants: Dict[str, int],
) -> Tuple[Optional[int], bool]:
    """Resolve a ToS expression to an int; ``(value, resolvable)``."""
    if node is None:
        return None, False
    value = _int_constant(node)
    if value is not None:
        return value, True
    name: Optional[str] = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    if name is not None:
        if name in local_constants:
            return local_constants[name], True
        if name in global_constants:
            return global_constants[name], True
    return None, False


def collect_project_facts(
    modules: Sequence[Tuple[str, str, ast.Module]],
) -> ProjectFacts:
    """Scan ``(module, display_path, tree)`` triples into project facts."""
    facts = ProjectFacts()

    per_module_constants: Dict[str, Dict[str, int]] = {}
    for module, _path, tree in modules:
        per_module_constants[module] = _module_int_constants(tree)
        if module.endswith("network.packet"):
            constants = per_module_constants[module]
            facts.tos_default = constants.get("TOS_DEFAULT", facts.tos_default)
            facts.tos_compress = constants.get(
                "TOS_COMPRESS", facts.tos_compress
            )

    # Constants importable across the project: packet's reserved values.
    global_constants: Dict[str, int] = {
        "TOS_DEFAULT": facts.tos_default,
        "TOS_COMPRESS": facts.tos_compress,
    }

    for module, path, tree in modules:
        local_constants = per_module_constants[module]
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                wire_name = _class_wire_name(node)
                if wire_name is not None:
                    facts.codec_class_names[node.name] = wire_name
                for decorator in node.decorator_list:
                    if _terminal_name(decorator) == "register_strategy":
                        facts.strategy_registrars.add(module)
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                if node.name in EXCHANGE_FUNCTIONS:
                    facts.exchange_definers.setdefault(
                        node.name, set()
                    ).add(module)
            elif isinstance(node, ast.Call):
                callee = _terminal_name(node.func)
                if callee == "register_strategy":
                    facts.strategy_registrars.add(module)
                if callee != "register_codec":
                    continue
                codec_class: Optional[str] = None
                if node.args:
                    arg0 = node.args[0]
                    if isinstance(arg0, ast.Call) and isinstance(
                        arg0.func, ast.Name
                    ):
                        codec_class = arg0.func.id
                tos_expr: Optional[ast.expr] = None
                for kw in node.keywords:
                    if kw.arg == "tos":
                        tos_expr = kw.value
                if tos_expr is None and len(node.args) > 1:
                    tos_expr = node.args[1]
                tos, resolvable = _resolve_tos(
                    tos_expr, local_constants, global_constants
                )
                facts.registrations.append(
                    CodecRegistration(
                        codec_class=codec_class,
                        codec_name=None,  # filled below once classes are known
                        tos=tos,
                        tos_resolvable=resolvable,
                        path=path,
                        line=node.lineno,
                        col=node.col_offset + 1,
                    )
                )

    facts.registrations = [
        CodecRegistration(
            codec_class=r.codec_class,
            codec_name=facts.codec_class_names.get(r.codec_class)
            if r.codec_class
            else None,
            tos=r.tos,
            tos_resolvable=r.tos_resolvable,
            path=r.path,
            line=r.line,
            col=r.col,
        )
        for r in facts.registrations
    ]
    return facts
