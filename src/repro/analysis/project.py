"""Whole-program facts gathered before per-file rules run.

Registry/ToS consistency (rule R3) is not a single-file property: codec
classes declare their wire name in one module, ``register_codec`` calls
claim ToS bytes in another, and ``network.packet`` owns the reserved
constants.  This pre-pass walks every parsed file once and records the
cross-file facts rules need, resolving simple constant references
(``tos=TOS_COMPRESS``) statically.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Fallbacks when the linted file set does not include network/packet.py
#: (e.g. fixture trees in tests); values mirror the paper's contract.
DEFAULT_TOS_DEFAULT = 0x00
DEFAULT_TOS_COMPRESS = 0x28

#: The gradient-exchange primitives owned by the strategy layer.  Rule
#: R7 confines direct calls to these to strategy-plugin modules (ones
#: that register a :class:`GradientStrategy`) and to the modules that
#: define the primitives themselves.
EXCHANGE_FUNCTIONS = (
    "ring_exchange",
    "hierarchical_exchange",
    "worker_exchange",
    "aggregator_exchange",
)

#: The compressed-domain aggregation entry points owned by the
#: aggregation-site layer.  Rule R12 confines inline
#: decompress→sum→recompress sequences to the modules that define these
#: (plus codec implementations, which own their own algebra).
AGGREGATION_FUNCTIONS = (
    "aggregate_compressed",
    "aggregate_endpoint",
    "combine_parts",
)


@dataclass(frozen=True)
class CodecRegistration:
    """One ``register_codec(SomeCodec(), tos=...)`` call site."""

    codec_class: Optional[str]
    codec_name: Optional[str]
    tos: Optional[int]
    tos_resolvable: bool
    path: str
    line: int
    col: int


@dataclass
class ProjectFacts:
    """Cross-file facts available to every rule's ``finish`` phase."""

    tos_default: int = DEFAULT_TOS_DEFAULT
    tos_compress: int = DEFAULT_TOS_COMPRESS
    registrations: List[CodecRegistration] = field(default_factory=list)
    #: ClassName -> wire name, for classes declaring ``name = "<str>"``.
    codec_class_names: Dict[str, str] = field(default_factory=dict)
    #: Modules that register a GradientStrategy (decorator or call).
    strategy_registrars: Set[str] = field(default_factory=set)
    #: Exchange-primitive name -> modules defining a function of that
    #: name (the primitive layer itself, exempt from R7).
    exchange_definers: Dict[str, Set[str]] = field(default_factory=dict)
    #: Modules defining a compressed-domain aggregation entry point
    #: (the aggregation-site layer itself, exempt from R12).
    aggregation_definers: Set[str] = field(default_factory=set)
    #: Modules defining both ``compress`` and ``decompress`` (codec
    #: implementations, exempt from R12 — error feedback legitimately
    #: reconstructs and re-encodes inside the codec).
    codec_definers: Set[str] = field(default_factory=set)
    #: module -> module-level names bound to set values (rule R10).
    set_globals: Dict[str, Set[str]] = field(default_factory=dict)
    #: Attribute names annotated ``Set[...]``/``FrozenSet[...]`` anywhere
    #: in the project — iterating ``obj.<attr>`` is unordered (rule R10).
    set_attrs: Set[str] = field(default_factory=set)
    #: module -> module-level dict globals mutated by subscript store
    #: (registries); listing them unsorted leaks insertion order (R10).
    registry_globals: Dict[str, Set[str]] = field(default_factory=dict)

    @property
    def registered_names(self) -> Set[str]:
        return {
            r.codec_name for r in self.registrations if r.codec_name is not None
        }


def _terminal_name(node: ast.AST) -> Optional[str]:
    """Terminal name of a reference: ``pkg.register_strategy`` -> attr."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        # ``@register_strategy(...)``-style decorator factories.
        return _terminal_name(node.func)
    return None


def _int_constant(node: ast.AST) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        if not isinstance(node.value, bool):
            return node.value
    return None


def _module_int_constants(tree: ast.Module) -> Dict[str, int]:
    constants: Dict[str, int] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            value = _int_constant(stmt.value)
            if isinstance(target, ast.Name) and value is not None:
                constants[target.id] = value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value = _int_constant(stmt.value)
            if isinstance(stmt.target, ast.Name) and value is not None:
                constants[stmt.target.id] = value
    return constants


def _class_wire_name(node: ast.ClassDef) -> Optional[str]:
    for stmt in node.body:
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target, value = stmt.target, stmt.value
        if (
            isinstance(target, ast.Name)
            and target.id == "name"
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
        ):
            return value.value
    return None


#: Set-producing callables recognized statically.
_SET_CALLS = {"set", "frozenset"}

#: Annotation heads naming unordered collections.
_SET_ANNOTATIONS = {
    "Set",
    "set",
    "FrozenSet",
    "frozenset",
    "MutableSet",
    "AbstractSet",
}


def is_set_expr(node: ast.AST) -> bool:
    """True for expressions that statically evaluate to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        callee = _terminal_name(node.func)
        if callee in _SET_CALLS:
            return True
        # ``a | b`` on sets is untypeable statically, but the named
        # set-algebra methods are unambiguous.
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        ):
            return True
    return False


def annotation_is_set(node: Optional[ast.expr]) -> bool:
    """True when an annotation names an unordered collection type."""
    if node is None:
        return False
    target = node.value if isinstance(node, ast.Subscript) else node
    name = _terminal_name(target)
    if name in _SET_ANNOTATIONS:
        return True
    # String annotations ("Set[str]") under ``from __future__ import
    # annotations`` arrive as constants.
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        head = node.value.split("[", 1)[0].strip()
        return head.rsplit(".", 1)[-1] in _SET_ANNOTATIONS
    return False


def _collect_ordering_facts(
    facts: ProjectFacts, module: str, tree: ast.Module
) -> None:
    """Record set-valued globals/attrs and registry dicts for rule R10."""
    set_names: Set[str] = set()
    dict_names: Set[str] = set()
    for stmt in tree.body:
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target, value = stmt.target, stmt.value
            if isinstance(target, ast.Name) and annotation_is_set(
                stmt.annotation
            ):
                set_names.add(target.id)
        if not isinstance(target, ast.Name):
            continue
        if value is not None and is_set_expr(value):
            set_names.add(target.id)
        if isinstance(value, ast.Dict) or (
            isinstance(value, ast.Call)
            and _terminal_name(value.func) == "dict"
        ):
            dict_names.add(target.id)

    mutated: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for tgt in targets:
                if isinstance(tgt, ast.Subscript) and isinstance(
                    tgt.value, ast.Name
                ):
                    mutated.add(tgt.value.id)
        # Set-typed annotations taint the *attribute name* project-wide:
        # class-body annotations (dataclass fields) carry Name targets,
        # ``self.x: Set[...]`` assignments carry Attribute targets.
        if isinstance(node, ast.AnnAssign) and annotation_is_set(
            node.annotation
        ):
            if isinstance(node.target, ast.Name):
                facts.set_attrs.add(node.target.id)
            elif isinstance(node.target, ast.Attribute):
                facts.set_attrs.add(node.target.attr)

    if set_names:
        facts.set_globals[module] = set_names
    registries = dict_names & mutated
    if registries:
        facts.registry_globals[module] = registries


def _resolve_tos(
    node: Optional[ast.expr],
    local_constants: Dict[str, int],
    global_constants: Dict[str, int],
) -> Tuple[Optional[int], bool]:
    """Resolve a ToS expression to an int; ``(value, resolvable)``."""
    if node is None:
        return None, False
    value = _int_constant(node)
    if value is not None:
        return value, True
    name: Optional[str] = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    if name is not None:
        if name in local_constants:
            return local_constants[name], True
        if name in global_constants:
            return global_constants[name], True
    return None, False


def collect_project_facts(
    modules: Sequence[Tuple[str, str, ast.Module]],
) -> ProjectFacts:
    """Scan ``(module, display_path, tree)`` triples into project facts."""
    facts = ProjectFacts()

    per_module_constants: Dict[str, Dict[str, int]] = {}
    for module, _path, tree in modules:
        per_module_constants[module] = _module_int_constants(tree)
        if module.endswith("network.packet"):
            constants = per_module_constants[module]
            facts.tos_default = constants.get("TOS_DEFAULT", facts.tos_default)
            facts.tos_compress = constants.get(
                "TOS_COMPRESS", facts.tos_compress
            )

    # Constants importable across the project: packet's reserved values.
    global_constants: Dict[str, int] = {
        "TOS_DEFAULT": facts.tos_default,
        "TOS_COMPRESS": facts.tos_compress,
    }

    defined_names: Dict[str, Set[str]] = {}
    for module, path, tree in modules:
        local_constants = per_module_constants[module]
        _collect_ordering_facts(facts, module, tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                wire_name = _class_wire_name(node)
                if wire_name is not None:
                    facts.codec_class_names[node.name] = wire_name
                for decorator in node.decorator_list:
                    if _terminal_name(decorator) == "register_strategy":
                        facts.strategy_registrars.add(module)
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                if node.name in EXCHANGE_FUNCTIONS:
                    facts.exchange_definers.setdefault(
                        node.name, set()
                    ).add(module)
                if node.name in AGGREGATION_FUNCTIONS:
                    facts.aggregation_definers.add(module)
                defined_names.setdefault(module, set()).add(node.name)
            elif isinstance(node, ast.Call):
                callee = _terminal_name(node.func)
                if callee == "register_strategy":
                    facts.strategy_registrars.add(module)
                if callee != "register_codec":
                    continue
                codec_class: Optional[str] = None
                if node.args:
                    arg0 = node.args[0]
                    if isinstance(arg0, ast.Call) and isinstance(
                        arg0.func, ast.Name
                    ):
                        codec_class = arg0.func.id
                tos_expr: Optional[ast.expr] = None
                for kw in node.keywords:
                    if kw.arg == "tos":
                        tos_expr = kw.value
                if tos_expr is None and len(node.args) > 1:
                    tos_expr = node.args[1]
                tos, resolvable = _resolve_tos(
                    tos_expr, local_constants, global_constants
                )
                facts.registrations.append(
                    CodecRegistration(
                        codec_class=codec_class,
                        codec_name=None,  # filled below once classes are known
                        tos=tos,
                        tos_resolvable=resolvable,
                        path=path,
                        line=node.lineno,
                        col=node.col_offset + 1,
                    )
                )

    for module, names in defined_names.items():
        if {"compress", "decompress"} <= names:
            facts.codec_definers.add(module)

    facts.registrations = [
        CodecRegistration(
            codec_class=r.codec_class,
            codec_name=facts.codec_class_names.get(r.codec_class)
            if r.codec_class
            else None,
            tos=r.tos,
            tos_resolvable=r.tos_resolvable,
            path=r.path,
            line=r.line,
            col=r.col,
        )
        for r in facts.registrations
    ]
    return facts
