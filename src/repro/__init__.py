"""INCEPTIONN reproduction — in-network gradient compression and
gradient-centric distributed DNN training (Li et al., MICRO 2018).

Subpackages
-----------
``repro.core``
    The lossy FP32 gradient codec (Algorithms 2/3) and its statistics.
``repro.hardware``
    Bit-exact burst-level model of the NIC compression/decompression
    engines (Figs 8-10).
``repro.network``
    Discrete-event network substrate: packets, links, topologies.
``repro.transport``
    MPI-style endpoints and collectives with ToS-0x28 tagging (Fig 11).
``repro.dnn``
    From-scratch NumPy DNN training framework and model zoo.
``repro.distributed``
    Algorithm 1 (gradient-centric ring), the worker-aggregator baseline,
    and hierarchical composition (Fig 1c).
``repro.perfmodel``
    Analytical and simulated performance models calibrated to Table II.
``repro.baselines``
    Truncation, snappy-like, SZ-like comparators and software cost model.

Quickstart::

    import numpy as np
    from repro import compress, decompress, ErrorBound

    rng = np.random.default_rng(0)
    grads = (rng.standard_normal(1_000_000) * 0.01).astype(np.float32)
    cg = compress(grads, ErrorBound(10))
    print(cg.compression_ratio)          # ~10-16x on gradient-shaped data
    restored = decompress(cg)            # max error < 2^-10
"""

from .core import (
    DEFAULT_BOUND,
    ErrorBound,
    PAPER_BOUNDS,
    CompressedGradients,
    bitwidth_distribution,
    compress,
    compression_ratio,
    decompress,
    roundtrip,
)
from .distributed import ring_exchange, train_distributed
from .dnn import PAPER_MODELS, build_hdc, build_mini_cnn
from .hardware import CompressionEngine, DecompressionEngine, InceptionnNic
from .perfmodel import (
    equal_accuracy_speedup,
    fig12_estimates,
    simulate_ring_exchange,
    simulate_wa_exchange,
)
from .transport import ClusterComm, ClusterConfig

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_BOUND",
    "ErrorBound",
    "PAPER_BOUNDS",
    "CompressedGradients",
    "bitwidth_distribution",
    "compress",
    "compression_ratio",
    "decompress",
    "roundtrip",
    "ring_exchange",
    "train_distributed",
    "PAPER_MODELS",
    "build_hdc",
    "build_mini_cnn",
    "CompressionEngine",
    "DecompressionEngine",
    "InceptionnNic",
    "equal_accuracy_speedup",
    "fig12_estimates",
    "simulate_ring_exchange",
    "simulate_wa_exchange",
    "ClusterComm",
    "ClusterConfig",
    "__version__",
]
