"""Typed trace events keyed by simulated time.

The model follows Chrome's trace-event format closely enough that
conversion (:func:`repro.obs.export.to_chrome`) is mechanical: an event
is either a *complete span* (``ph == "X"``, with a duration) or an
*instant* (``ph == "i"``).  Timestamps are simulated seconds — the
tracer never reads a wall clock, so traces are deterministic and
replayable.

Categories partition the stack's layers:

``message``   message-level send/deliver/retransmit (network simulator)
``link``      per-train occupancy of a wire link (FIFO reservation)
``engine``    per-train occupancy of a NIC (de)compression engine
``ring``      Algorithm 1 P1/P2 steps (distributed ring)
``hier``      hierarchical exchange levels (group ring / leader ring /
              broadcast)
``async``     asynchronous parameter-server rounds and updates
``codec``     compress/decompress calls with the achieved ratio
``phase``     Table II phase attribution (forward, backward, gpu_copy,
              gradient_sum, update) — the spans ``report.py`` sums
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from .metrics import Metrics

#: Complete span (has a duration).
PH_SPAN = "X"
#: Instantaneous event.
PH_INSTANT = "i"

CAT_MESSAGE = "message"
CAT_LINK = "link"
CAT_ENGINE = "engine"
CAT_RING = "ring"
CAT_HIER = "hier"
CAT_ASYNC = "async"
CAT_CODEC = "codec"
CAT_PHASE = "phase"
#: Strategy-driver events (one ``strategy.exchange`` span per worker
#: iteration, plus strategy-specific sync/apply records).
CAT_STRATEGY = "strategy"


@dataclass
class TraceEvent:
    """One recorded occurrence, span or instant, in simulated time."""

    name: str
    cat: str
    ph: str
    ts: float
    dur: float = 0.0
    node: Optional[int] = None
    args: Optional[Dict[str, object]] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form (the trace file's event record)."""
        out: Dict[str, object] = {
            "name": self.name,
            "cat": self.cat,
            "ph": self.ph,
            "ts": self.ts,
        }
        if self.ph == PH_SPAN:
            out["dur"] = self.dur
        if self.node is not None:
            out["node"] = self.node
        if self.args:
            out["args"] = self.args
        return out


class Tracer:
    """Append-only collector of :class:`TraceEvent` records.

    Instrumented code holds an ``Optional[Tracer]`` and guards every
    record with ``if tracer is not None`` — a ``None`` tracer is the
    zero-cost disabled path.  The tracer owns a :class:`Metrics`
    registry so one nullable handle threads both facilities through the
    stack.
    """

    def __init__(self, metrics: Optional[Metrics] = None) -> None:
        self.events: List[TraceEvent] = []
        self.metrics = metrics if metrics is not None else Metrics()

    def __len__(self) -> int:
        return len(self.events)

    def span(
        self,
        name: str,
        cat: str,
        ts: float,
        dur: float,
        node: Optional[int] = None,
        **args: object,
    ) -> TraceEvent:
        """Record a complete span starting at ``ts`` lasting ``dur``."""
        event = TraceEvent(
            name=name,
            cat=cat,
            ph=PH_SPAN,
            ts=ts,
            dur=dur,
            node=node,
            args=args or None,
        )
        self.events.append(event)
        return event

    def instant(
        self,
        name: str,
        cat: str,
        ts: float,
        node: Optional[int] = None,
        **args: object,
    ) -> TraceEvent:
        """Record an instantaneous event at ``ts``."""
        event = TraceEvent(
            name=name,
            cat=cat,
            ph=PH_INSTANT,
            ts=ts,
            node=node,
            args=args or None,
        )
        self.events.append(event)
        return event

    # -- queries ------------------------------------------------------------

    def events_in(self, cat: str, name: Optional[str] = None) -> Iterator[TraceEvent]:
        """Events of one category (optionally one name), in record order."""
        for event in self.events:
            if event.cat == cat and (name is None or event.name == name):
                yield event

    def count(self, cat: str, name: Optional[str] = None) -> int:
        """Number of recorded events matching ``cat`` (and ``name``)."""
        return sum(1 for _ in self.events_in(cat, name))

    def phase_totals(self, node: Optional[int] = None) -> Dict[str, float]:
        """Summed durations of ``phase``-category spans, keyed by name.

        This is the query ``report.py``'s Table II breakdown is built
        on: each phase's total is the sum of its span durations, in
        record order (so the floating-point accumulation is identical
        to an inline ``+=`` at the instrumentation site).
        """
        totals: Dict[str, float] = {}
        for event in self.events:
            if event.cat != CAT_PHASE or event.ph != PH_SPAN:
                continue
            if node is not None and event.node != node:
                continue
            totals[event.name] = totals.get(event.name, 0.0) + event.dur
        return totals

    def span_total(self, cat: str, name: Optional[str] = None) -> float:
        """Summed duration of every span in ``cat`` (optionally by name)."""
        return sum(
            e.dur for e in self.events_in(cat, name) if e.ph == PH_SPAN
        )
