"""Observability: stack-wide tracing and metrics for the simulated cluster.

Dependency-free.  A :class:`Tracer` collects typed span/instant events
keyed by *simulated* time (message send/deliver, per-train link and
engine occupancy, ring P1/P2 steps, codec calls with achieved ratio,
retransmits); its attached :class:`Metrics` registry collects
counters/gauges/histograms (wire bytes by ToS/codec, tag-class
histograms, queue depths, trains retransmitted).

Every instrumentation site in the stack is guarded by
``if tracer is not None`` so the disabled path adds no allocations and
no timing-visible work — an untraced run is bit-identical to the
pre-observability code.
"""

from .diff import TraceDiff, canonical_events, diff_traces, trace_fingerprint
from .metrics import Counter, Gauge, Histogram, Metrics
from .tracer import (
    CAT_ASYNC,
    CAT_CODEC,
    CAT_ENGINE,
    CAT_HIER,
    CAT_LINK,
    CAT_MESSAGE,
    CAT_PHASE,
    CAT_RING,
    CAT_STRATEGY,
    PH_INSTANT,
    PH_SPAN,
    TraceEvent,
    Tracer,
)
from .export import (
    load_trace,
    to_chrome,
    trace_document,
    write_chrome,
    write_trace,
)
from .schema import TRACE_SCHEMA, TRACE_SCHEMA_NAME, TRACE_SCHEMA_VERSION, validate_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "TraceEvent",
    "Tracer",
    "CAT_ASYNC",
    "CAT_CODEC",
    "CAT_ENGINE",
    "CAT_HIER",
    "CAT_LINK",
    "CAT_MESSAGE",
    "CAT_PHASE",
    "CAT_RING",
    "CAT_STRATEGY",
    "PH_INSTANT",
    "PH_SPAN",
    "load_trace",
    "to_chrome",
    "trace_document",
    "write_chrome",
    "write_trace",
    "TRACE_SCHEMA",
    "TRACE_SCHEMA_NAME",
    "TRACE_SCHEMA_VERSION",
    "validate_trace",
    "TraceDiff",
    "canonical_events",
    "diff_traces",
    "trace_fingerprint",
]
