"""Versioned trace-file schema and a dependency-free validator.

The trace document is versioned (``schema``/``version`` header) so
downstream tooling can evolve without guessing.  :data:`TRACE_SCHEMA`
is a JSON-Schema-style description of version 1 — published for
external validators — while :func:`validate_trace` enforces the same
contract with zero dependencies (CI runs it on every traced exchange).
"""

from __future__ import annotations

from typing import Dict

TRACE_SCHEMA_NAME = "repro.trace"
TRACE_SCHEMA_VERSION = 1

_VALID_PH = ("X", "i")

#: JSON-Schema (draft-07 flavoured) description of trace version 1.
TRACE_SCHEMA: Dict[str, object] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": f"{TRACE_SCHEMA_NAME} v{TRACE_SCHEMA_VERSION}",
    "type": "object",
    "required": ["schema", "version", "clock", "events", "metrics"],
    "properties": {
        "schema": {"const": TRACE_SCHEMA_NAME},
        "version": {"const": TRACE_SCHEMA_VERSION},
        "meta": {"type": "object"},
        "clock": {
            "type": "object",
            "required": ["unit", "domain"],
            "properties": {
                "unit": {"const": "s"},
                "domain": {"const": "simulated"},
            },
        },
        "events": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "cat", "ph", "ts"],
                "properties": {
                    "name": {"type": "string"},
                    "cat": {"type": "string"},
                    "ph": {"enum": list(_VALID_PH)},
                    "ts": {"type": "number", "minimum": 0},
                    "dur": {"type": "number", "minimum": 0},
                    "node": {"type": "integer"},
                    "args": {"type": "object"},
                },
            },
        },
        "metrics": {
            "type": "object",
            "required": ["counters", "gauges", "histograms"],
            "properties": {
                "counters": {"type": "object"},
                "gauges": {"type": "object"},
                "histograms": {"type": "object"},
            },
        },
    },
}


def _fail(path: str, message: str) -> None:
    raise ValueError(f"invalid trace at {path}: {message}")


def _require(doc: Dict[str, object], key: str, path: str) -> object:
    if key not in doc:
        _fail(path, f"missing required key {key!r}")
    return doc[key]


def _check_number(value: object, path: str, minimum: float = 0.0) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(path, f"expected a number, got {type(value).__name__}")
    if value < minimum:  # type: ignore[operator]
        _fail(path, f"must be >= {minimum}, got {value!r}")


def _check_event(event: object, path: str) -> None:
    if not isinstance(event, dict):
        _fail(path, f"expected an object, got {type(event).__name__}")
        return
    name = _require(event, "name", path)
    if not isinstance(name, str) or not name:
        _fail(f"{path}.name", "must be a non-empty string")
    cat = _require(event, "cat", path)
    if not isinstance(cat, str) or not cat:
        _fail(f"{path}.cat", "must be a non-empty string")
    ph = _require(event, "ph", path)
    if ph not in _VALID_PH:
        _fail(f"{path}.ph", f"must be one of {_VALID_PH}, got {ph!r}")
    _check_number(_require(event, "ts", path), f"{path}.ts")
    if ph == "X":
        _check_number(_require(event, "dur", path), f"{path}.dur")
    elif "dur" in event:
        _fail(f"{path}.dur", "instant events must not carry a duration")
    if "node" in event and (
        isinstance(event["node"], bool) or not isinstance(event["node"], int)
    ):
        _fail(f"{path}.node", "must be an integer")
    if "args" in event and not isinstance(event["args"], dict):
        _fail(f"{path}.args", "must be an object")


def validate_trace(doc: object) -> Dict[str, object]:
    """Validate a trace document against the version-1 contract.

    Returns the document on success; raises :class:`ValueError` naming
    the offending path otherwise.  Dependency-free by design — this is
    the validator CI and ``repro trace validate`` run.
    """
    if not isinstance(doc, dict):
        raise ValueError(
            f"invalid trace: expected an object, got {type(doc).__name__}"
        )
    schema = _require(doc, "schema", "$")
    if schema != TRACE_SCHEMA_NAME:
        _fail("$.schema", f"expected {TRACE_SCHEMA_NAME!r}, got {schema!r}")
    version = _require(doc, "version", "$")
    if version != TRACE_SCHEMA_VERSION:
        _fail(
            "$.version",
            f"expected {TRACE_SCHEMA_VERSION}, got {version!r}",
        )
    clock = _require(doc, "clock", "$")
    if not isinstance(clock, dict):
        _fail("$.clock", "must be an object")
    if clock.get("unit") != "s":  # type: ignore[union-attr]
        _fail("$.clock.unit", "must be 's' (simulated seconds)")
    if clock.get("domain") != "simulated":  # type: ignore[union-attr]
        _fail("$.clock.domain", "must be 'simulated'")
    if "meta" in doc and not isinstance(doc["meta"], dict):
        _fail("$.meta", "must be an object")
    events = _require(doc, "events", "$")
    if not isinstance(events, list):
        _fail("$.events", "must be an array")
    for index, event in enumerate(events):  # type: ignore[arg-type]
        _check_event(event, f"$.events[{index}]")
    metrics = _require(doc, "metrics", "$")
    if not isinstance(metrics, dict):
        _fail("$.metrics", "must be an object")
    for section in ("counters", "gauges", "histograms"):
        part = _require(metrics, section, "$.metrics")  # type: ignore[arg-type]
        if not isinstance(part, dict):
            _fail(f"$.metrics.{section}", "must be an object")
    return doc  # type: ignore[return-value]
