"""Trace diffing: locate the first divergence between two recorded runs.

The determinism sanitizer (:mod:`repro.sanitize`) runs one scenario
several times — replayed with identical seeds, and again with the event
queue's equal-timestamp tie-breaking perturbed — and needs to answer
two questions about the resulting event streams:

* *are they the same run?* — :func:`trace_fingerprint` hashes the
  canonical JSON form of every event, so bit-identical replays produce
  identical digests;
* *where did they first differ?* — :func:`diff_traces` walks the two
  streams in parallel and reports the first divergent event with a
  window of surrounding context, the postmortem a race report is built
  around.

Everything operates on :class:`~repro.obs.tracer.TraceEvent` lists (or
their already-serialized dict forms), so diffs work equally on live
tracers and on trace documents loaded from disk.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from .tracer import TraceEvent

#: Events accepted by the diff: live records or serialized dicts.
EventLike = Union[TraceEvent, Dict[str, object]]


def canonical_events(events: Sequence[EventLike]) -> List[Dict[str, object]]:
    """Serialized form of ``events``, stable across live/loaded sources."""
    return [
        event.to_dict() if isinstance(event, TraceEvent) else dict(event)
        for event in events
    ]


def trace_fingerprint(events: Sequence[EventLike]) -> str:
    """sha256 hex digest of the canonical JSON event stream.

    Two runs with the same fingerprint recorded the same events in the
    same order with the same payloads — the replay-determinism check is
    an equality test on this digest.
    """
    canon = canonical_events(events)
    blob = json.dumps(canon, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _render_event(event: Dict[str, object]) -> str:
    name = event.get("name", "?")
    cat = event.get("cat", "?")
    ts = event.get("ts", 0.0)
    node = event.get("node")
    where = f" node={node}" if node is not None else ""
    dur = event.get("dur")
    span = f" dur={dur:.9g}" if isinstance(dur, (int, float)) else ""
    args = event.get("args")
    extra = f" {args}" if args else ""
    return f"[{cat}] {name} ts={ts:.9g}{span}{where}{extra}"


@dataclass(frozen=True)
class TraceDiff:
    """Where two event streams first diverge (if they do).

    ``divergence_index`` is the position of the first event present in
    one stream but not (or not equal) in the other; ``None`` when the
    streams are identical.  ``context_a``/``context_b`` carry a window
    of events around the divergence from each stream, already
    serialized, for the human postmortem and the JSON artifact.
    """

    identical: bool
    divergence_index: Optional[int]
    a_total: int
    b_total: int
    a_event: Optional[Dict[str, object]] = None
    b_event: Optional[Dict[str, object]] = None
    context_a: List[Dict[str, object]] = field(default_factory=list)
    context_b: List[Dict[str, object]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "identical": self.identical,
            "divergence_index": self.divergence_index,
            "a_total": self.a_total,
            "b_total": self.b_total,
            "a_event": self.a_event,
            "b_event": self.b_event,
            "context_a": self.context_a,
            "context_b": self.context_b,
        }

    def render(self) -> str:
        """Human-readable first-divergence report."""
        if self.identical:
            return (
                f"traces identical ({self.a_total} events)"
            )
        lines = [
            f"traces diverge at event {self.divergence_index} "
            f"({self.a_total} vs {self.b_total} events)"
        ]
        lines.append(
            "  baseline:  "
            + (_render_event(self.a_event) if self.a_event else "<stream ended>")
        )
        lines.append(
            "  perturbed: "
            + (_render_event(self.b_event) if self.b_event else "<stream ended>")
        )
        if self.context_a:
            lines.append("  baseline context:")
            lines.extend(f"    {_render_event(e)}" for e in self.context_a)
        if self.context_b:
            lines.append("  perturbed context:")
            lines.extend(f"    {_render_event(e)}" for e in self.context_b)
        return "\n".join(lines)


def diff_traces(
    a: Sequence[EventLike],
    b: Sequence[EventLike],
    context: int = 3,
) -> TraceDiff:
    """First divergence between event streams ``a`` and ``b``.

    Events are compared in record order on their full canonical dict
    form (name, category, timestamp, duration, node, args).  ``context``
    events before and after the divergence from each stream travel in
    the report.
    """
    if context < 0:
        raise ValueError("context cannot be negative")
    canon_a = canonical_events(a)
    canon_b = canonical_events(b)
    limit = min(len(canon_a), len(canon_b))
    index: Optional[int] = None
    for i in range(limit):
        if canon_a[i] != canon_b[i]:
            index = i
            break
    if index is None:
        if len(canon_a) == len(canon_b):
            return TraceDiff(
                identical=True,
                divergence_index=None,
                a_total=len(canon_a),
                b_total=len(canon_b),
            )
        index = limit  # one stream is a strict prefix of the other
    lo = max(0, index - context)
    hi = index + context + 1
    return TraceDiff(
        identical=False,
        divergence_index=index,
        a_total=len(canon_a),
        b_total=len(canon_b),
        a_event=canon_a[index] if index < len(canon_a) else None,
        b_event=canon_b[index] if index < len(canon_b) else None,
        context_a=canon_a[lo:hi],
        context_b=canon_b[lo:hi],
    )
