"""Trace serialization: versioned JSON document and Chrome trace format.

``trace_document`` freezes a :class:`~repro.obs.tracer.Tracer` into the
version-1 JSON contract (:mod:`repro.obs.schema`); ``to_chrome`` maps
the same events onto the ``chrome://tracing`` / Perfetto "trace event
format" so traces open directly in a browser timeline.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from .schema import TRACE_SCHEMA_NAME, TRACE_SCHEMA_VERSION, validate_trace
from .tracer import PH_SPAN, Tracer

_PathLike = Union[str, Path]


def trace_document(
    tracer: Tracer, meta: Optional[Dict[str, object]] = None
) -> Dict[str, object]:
    """Freeze the tracer's events + metrics into a version-1 document."""
    return {
        "schema": TRACE_SCHEMA_NAME,
        "version": TRACE_SCHEMA_VERSION,
        "meta": dict(meta or {}),
        "clock": {"unit": "s", "domain": "simulated"},
        "events": [event.to_dict() for event in tracer.events],
        "metrics": tracer.metrics.snapshot(),
    }


def write_trace(
    tracer: Tracer,
    path: _PathLike,
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Validate and write the trace document; returns the document."""
    doc = validate_trace(trace_document(tracer, meta))
    Path(path).write_text(json.dumps(doc, indent=1) + "\n", encoding="utf-8")
    return doc


def load_trace(path: _PathLike) -> Dict[str, object]:
    """Read and validate a trace document from disk."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    return validate_trace(doc)


def to_chrome(doc: Dict[str, object]) -> Dict[str, object]:
    """Convert a validated trace document to Chrome trace-event JSON.

    Simulated seconds become microseconds (Chrome's unit); the node id
    maps to ``tid`` so each node gets its own timeline row, and the
    category to ``pid`` labelling via metadata events is avoided for
    simplicity — categories remain filterable via ``cat``.
    """
    events: List[Dict[str, object]] = []
    for event in doc["events"]:  # type: ignore[union-attr,index]
        ph = event["ph"]
        out: Dict[str, object] = {
            "name": event["name"],
            "cat": event["cat"],
            "ph": ph,
            "ts": float(event["ts"]) * 1e6,
            "pid": 0,
            "tid": event.get("node", 0),
        }
        if ph == PH_SPAN:
            out["dur"] = float(event.get("dur", 0.0)) * 1e6
        else:
            out["s"] = "t"  # thread-scoped instant
        if "args" in event:
            out["args"] = event["args"]
        events.append(out)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": doc.get("schema"),  # type: ignore[union-attr]
            "version": doc.get("version"),  # type: ignore[union-attr]
            "meta": doc.get("meta", {}),  # type: ignore[union-attr]
        },
    }


def write_chrome(doc: Dict[str, object], path: _PathLike) -> None:
    """Write the Chrome-format conversion of a validated document."""
    chrome = to_chrome(doc)
    Path(path).write_text(json.dumps(chrome) + "\n", encoding="utf-8")
