"""Counters, gauges and histograms for the simulated stack.

A :class:`Metrics` registry hands out named, labelled instruments:

* :class:`Counter` — monotonically increasing totals (wire bytes by
  ToS/codec, messages sent, trains retransmitted);
* :class:`Gauge` — last-written values with a running max (engine queue
  depth);
* :class:`Histogram` — fixed-bucket distributions (tag classes, queue
  waits).

Everything is plain Python dict/float state: no background threads, no
wall clocks, no third-party dependencies.  ``snapshot()`` returns a
JSON-friendly dict that travels inside the trace document.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

#: A registry key: instrument name plus sorted label pairs.
_Key = Tuple[str, Tuple[Tuple[str, str], ...]]

#: Default histogram bucket upper bounds (values above fall in +Inf).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-9,
    1e-6,
    1e-3,
    1.0,
    1e3,
    1e6,
    1e9,
)


def _key(name: str, labels: Dict[str, object]) -> _Key:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total."""

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class Gauge:
    """A last-written value that remembers its maximum."""

    def __init__(self) -> None:
        self.value = 0.0
        self.max_value = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value


class Histogram:
    """Fixed-bucket distribution with count/sum/min/max."""

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histograms need at least one bucket bound")
        self.bounds = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)  # + overflow
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class Metrics:
    """Registry of labelled instruments.

    ``counter/gauge/histogram`` return the existing instrument for a
    (name, labels) pair or create it — call sites never pre-register.
    """

    def __init__(self) -> None:
        self._counters: Dict[_Key, Counter] = {}
        self._gauges: Dict[_Key, Gauge] = {}
        self._histograms: Dict[_Key, Histogram] = {}

    def counter(self, name: str, **labels: object) -> Counter:
        key = _key(name, labels)
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter()
        return inst

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = _key(name, labels)
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge()
        return inst

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> Histogram:
        key = _key(name, labels)
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(buckets)
        return inst

    # -- export -------------------------------------------------------------

    @staticmethod
    def _label_str(key: _Key) -> str:
        name, labels = key
        if not labels:
            return name
        rendered = ",".join(f"{k}={v}" for k, v in labels)
        return f"{name}{{{rendered}}}"

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-friendly dump of every instrument's current state."""
        counters = {
            self._label_str(k): c.value for k, c in sorted(self._counters.items())
        }
        gauges = {
            self._label_str(k): {"value": g.value, "max": g.max_value}
            for k, g in sorted(self._gauges.items())
        }
        histograms = {
            self._label_str(k): {
                "bounds": list(h.bounds),
                "counts": list(h.counts),
                "count": h.count,
                "sum": h.total,
                "min": h.min,
                "max": h.max,
            }
            for k, h in sorted(self._histograms.items())
        }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
