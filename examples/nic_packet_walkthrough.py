"""Follow one gradient message through the NIC hardware, packet by packet.

Shows the ToS-0x28 classification, the burst compressor's output sizes,
the receive-side decompression, and the bit-exact match against the
software codec — the paper's Figs 8-11 in motion.

Run:  python examples/nic_packet_walkthrough.py
"""

import numpy as np

from repro.core import ErrorBound, compress
from repro.hardware import InceptionnNic, timing_model_for
from repro.network import TOS_COMPRESS, TOS_DEFAULT

BOUND = ErrorBound(10)


def main() -> None:
    rng = np.random.default_rng(7)
    gradients = np.where(
        rng.random(3650) < 0.1,
        rng.standard_normal(3650) * 0.1,
        rng.standard_normal(3650) * 0.002,
    ).astype(np.float32)

    sender = InceptionnNic(node_id=0, bound=BOUND)
    receiver = InceptionnNic(node_id=1, bound=BOUND)

    print("transmit side — segment, classify, compress")
    print(f"{'pkt':>4}{'ToS':>6}{'payload in':>12}{'on wire':>10}{'ratio':>8}")
    wire_packets = sender.transmit_message(
        gradients.tobytes(), dst=1, tos=TOS_COMPRESS
    )
    raw_packets = InceptionnNic(node_id=0, bound=BOUND).transmit_message(
        gradients.tobytes(), dst=1, tos=TOS_DEFAULT
    )
    for wire, raw in zip(wire_packets, raw_packets):
        ratio = raw.payload_nbytes / max(1, wire.payload_nbytes)
        print(
            f"{wire.seq:>4}{wire.tos:>#6x}{raw.payload_nbytes:>12}"
            f"{wire.payload_nbytes:>10}{ratio:>8.2f}"
        )

    print("\nreceive side — classify, decompress, reassemble")
    restored = receiver.receive_message(wire_packets)
    out = np.frombuffer(restored, dtype=np.float32)
    err = float(np.max(np.abs(out - gradients)))
    print(f"reassembled {out.size} values, max error {err:.2e} < {BOUND.bound:.2e}")

    print("\nbit-exactness — hardware stream == software codec stream")
    sw_stream = compress(gradients[:365], BOUND).to_bytes()
    hw_stream, stats = sender.compressor.compress(gradients[:365].tobytes())
    print(f"identical: {sw_stream == hw_stream} "
          f"({stats.bursts_in} bursts in, {stats.cycles} cycles @ 100 MHz)")

    model = timing_model_for(sender)
    print(
        f"\nengine timing surface: {model.engine_throughput_bps / 1e9:.1f} GB/s "
        f"streaming, {model.engine_latency_s * 1e9:.0f} ns pipeline fill"
    )
    counters = sender.counters
    print(
        f"NIC counters: {counters.tx_compressed} compressed / "
        f"{counters.tx_bypassed} bypassed, message-level ratio "
        f"{counters.tx_compression_ratio:.2f}x"
    )


if __name__ == "__main__":
    main()
