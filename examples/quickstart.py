"""Quickstart: compress gradients, bound the error, ship them on a ring.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ErrorBound, compress, decompress
from repro.distributed import ring_exchange
from repro.transport import ClusterComm, ClusterConfig


def main() -> None:
    # --- 1. The codec ------------------------------------------------------
    rng = np.random.default_rng(0)
    # Gradient-shaped data: tight near-zero peak with a light tail.
    grads = np.where(
        rng.random(1_000_000) < 0.1,
        rng.standard_normal(1_000_000) * 0.1,
        rng.standard_normal(1_000_000) * 0.002,
    ).astype(np.float32)

    for exponent in (10, 8, 6):
        bound = ErrorBound(exponent)
        cg = compress(grads, bound)
        restored = decompress(cg)
        err = np.max(np.abs(restored - grads))
        print(
            f"bound 2^-{exponent}: ratio {cg.compression_ratio:5.2f}x, "
            f"wire {cg.compressed_nbytes / 2**20:6.2f} MB "
            f"(from {cg.original_nbytes / 2**20:.2f} MB), "
            f"max error {err:.2e} < {bound.bound:.2e}"
        )

    # --- 2. The gradient-centric ring (Algorithm 1) ------------------------
    num_workers = 4
    comm = ClusterComm(
        ClusterConfig(num_nodes=num_workers, compression=True)
    )
    locals_ = [
        (rng.standard_normal(100_000) * 0.01).astype(np.float32)
        for _ in range(num_workers)
    ]
    results = {}

    def node(i):
        def proc():
            results[i] = yield from ring_exchange(
                comm.endpoints[i], locals_[i], num_workers, compressible=True
            )

        return proc

    for i in range(num_workers):
        comm.sim.process(node(i)())
    elapsed = comm.run()

    exact = np.sum(locals_, axis=0)
    worst = max(float(np.max(np.abs(results[i] - exact))) for i in results)
    print(
        f"\nring all-reduce over {num_workers} workers: "
        f"{elapsed * 1e3:.2f} ms simulated, "
        f"aggregate error {worst:.2e} (bound per hop 2^-10)"
    )
    print("every node now holds the full gradient sum — no aggregator needed")


if __name__ == "__main__":
    main()
