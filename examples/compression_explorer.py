"""Explore the codec on *real* gradients from a live training run.

Trains the HDC net briefly, captures gradient snapshots at several
stages, and reports — per stage and per error bound — the Table III
bitwidth classes, compression ratio, and reconstruction error, next to
the truncation and SZ-like baselines.

Run:  python examples/compression_explorer.py
"""

import numpy as np

from repro.baselines import sz_like, truncate_lsbs, truncation_ratio
from repro.core import (
    ErrorBound,
    bitwidth_distribution,
    compression_ratio,
    max_abs_error,
    roundtrip,
)
from repro.dnn import (
    LRSchedule,
    SGD,
    build_hdc,
    capture_gradient_trace,
    hdc_dataset,
)


def main() -> None:
    print("training HDC to capture gradient snapshots...")
    dataset = hdc_dataset(train_size=800, test_size=100, seed=0)
    net = build_hdc(seed=0)
    optimizer = SGD(LRSchedule(0.05), momentum=0.9, weight_decay=5e-5)
    trace = capture_gradient_trace(
        net, optimizer, dataset, batch_size=25, iterations=100,
        capture_at=[1, 50, 99], seed=0,
    )

    for iteration, grads in sorted(trace.items()):
        print(f"\n--- snapshot at iteration {iteration} "
              f"({grads.size:,} values, std {np.std(grads):.2e}) ---")
        print(f"{'scheme':<14}{'ratio':>8}{'max err':>12}"
              f"{'2-bit':>8}{'10-bit':>8}{'18-bit':>8}{'34-bit':>8}")
        for exponent in (10, 8, 6):
            bound = ErrorBound(exponent)
            dist = bitwidth_distribution(grads, bound).as_row
            ratio = compression_ratio(grads, bound)
            err = max_abs_error(grads, roundtrip(grads, bound))
            print(
                f"INC(2^-{exponent:<2}){'':<3}{ratio:>8.2f}{err:>12.2e}"
                + "".join(
                    f"{100 * dist[k]:>7.1f}%"
                    for k in ("2-bit", "10-bit", "18-bit", "34-bit")
                )
            )
        for bits in (16, 22, 24):
            err = max_abs_error(grads, truncate_lsbs(grads, bits))
            print(f"{bits}b-T{'':<9}{truncation_ratio(bits):>8.2f}{err:>12.2e}")
        sz_ratio = sz_like.compression_ratio(grads, 2.0**-10)
        sz_out = sz_like.decompress(sz_like.compress(grads, 2.0**-10), 2.0**-10)
        print(f"{'SZ-like':<14}{sz_ratio:>8.2f}"
              f"{max_abs_error(grads, sz_out):>12.2e}")

    print(
        "\ntakeaway: the 2-bit class dominates real gradients at every\n"
        "stage, so the codec lands 10-15x where truncation caps at 4x."
    )


if __name__ == "__main__":
    main()
