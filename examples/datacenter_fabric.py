"""Datacenter study: the ring on an oversubscribed two-tier fabric.

The paper's cluster hangs off one switch; production datacenters
oversubscribe rack uplinks (Sec. VII-C).  This example sweeps the
oversubscription factor and compares ring placements — showing that
INCEPTIONN's algorithm keeps its advantage as long as the ring is laid
out rack-aligned.

Run:  python examples/datacenter_fabric.py
"""

from repro.network import (
    Network,
    Simulation,
    TwoTierFabric,
    rack_aligned_ring_order,
    rack_interleaved_ring_order,
)

MB = 2**20
BLOCK = 8 * MB


def ring_time(order, oversubscription):
    sim = Simulation()
    fabric = TwoTierFabric(sim, 2, 4, oversubscription=oversubscription)
    net = Network(sim, fabric, train_packets=880)
    n = len(order)

    def node(idx):
        def proc():
            src = order[idx]
            nxt = order[(idx + 1) % n]
            for _ in range(2 * (n - 1)):
                yield net.send(src, nxt, BLOCK)

        return proc

    procs = [sim.process(node(i)()) for i in range(n)]
    out = []
    sim.all_of(procs).add_callback(lambda e: out.append(sim.now))
    sim.run()
    return out[0]


def wa_time(oversubscription):
    """Worker-aggregator with the aggregator in rack 0, workers spread."""
    sim = Simulation()
    fabric = TwoTierFabric(sim, 2, 4, oversubscription=oversubscription)
    net = Network(sim, fabric, train_packets=880)
    aggregator, workers = 0, [1, 2, 3, 4, 5, 6, 7]
    nbytes = 8 * BLOCK
    done = []
    gather = [net.send(w, aggregator, nbytes) for w in workers]

    def then_scatter(_):
        scatter = [net.send(aggregator, w, nbytes) for w in workers]
        sim.all_of(scatter).add_callback(lambda e: done.append(sim.now))

    sim.all_of(gather).add_callback(then_scatter)
    sim.run()
    return done[0]


def main() -> None:
    sim = Simulation()
    probe = TwoTierFabric(sim, 2, 4)
    aligned = rack_aligned_ring_order(probe)
    interleaved = rack_interleaved_ring_order(probe)

    print("8 nodes in 2 racks, 64 MB model, gradient exchange time (s)\n")
    print(f"{'oversub':>8}{'WA':>10}{'ring aligned':>14}{'ring interleaved':>18}")
    for oversub in (1.0, 2.0, 4.0, 8.0):
        print(
            f"{oversub:>7g}:1"
            f"{wa_time(oversub):>10.3f}"
            f"{ring_time(aligned, oversub):>14.3f}"
            f"{ring_time(interleaved, oversub):>18.3f}"
        )

    print(
        "\nrack-aligned rings cross the oversubscribed core on only one\n"
        "hop per direction, so the INCEPTIONN exchange keeps its edge in\n"
        "a datacenter; naive placement squanders it."
    )


if __name__ == "__main__":
    main()
