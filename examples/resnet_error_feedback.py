"""Residual network + error-feedback compression (extension demo).

Trains the mini-ResNet (batch norm, skip connections) with the codec at
its most aggressive bound (2^-6), with and without the error-feedback
extension, and compares learning curves — showing how the extension
recovers the accuracy the paper buys back with extra epochs.

Run:  python examples/resnet_error_feedback.py
"""

import numpy as np

from repro.core import ErrorBound, compression_ratio, feedback_hook, roundtrip
from repro.dnn import (
    LRSchedule,
    SGD,
    LocalTrainer,
    build_mini_resnet,
    cnn_dataset,
)

BOUND = ErrorBound(6)
ITERATIONS = 80


def train(label, hook):
    dataset = cnn_dataset(train_size=400, test_size=100, seed=0)
    net = build_mini_resnet(seed=0)
    optimizer = SGD(LRSchedule(0.02), momentum=0.9, weight_decay=5e-5)
    trainer = LocalTrainer(net, optimizer, dataset, batch_size=32, seed=0)
    ratios = []
    for iteration in range(ITERATIONS):
        loss, grad = trainer.local_gradient()
        ratios.append(compression_ratio(grad, BOUND))
        trainer.apply_gradient(hook(iteration, grad))
        if (iteration + 1) % 20 == 0:
            top1, _ = trainer.evaluate()
            print(f"  {label:<12} iter {iteration + 1:>3}: "
                  f"loss {loss:.3f}, top-1 {top1:.3f}")
    top1, _ = trainer.evaluate()
    return top1, float(np.mean(ratios))


def main() -> None:
    print(f"mini-ResNet, codec bound {BOUND} ({BOUND.bound:.4f} abs error)\n")

    print("lossless baseline:")
    base, _ = train("lossless", lambda i, g: g)

    print("codec, no feedback:")
    plain, ratio = train("codec", lambda i, g: roundtrip(g, BOUND))

    print("codec + error feedback:")
    ef, _ = train("codec+EF", feedback_hook(BOUND))

    print(f"\nfinal top-1:  lossless {base:.3f}  codec {plain:.3f}  "
          f"codec+EF {ef:.3f}   (avg ratio {ratio:.1f}x)")
    print(
        "error feedback carries the codec's residual into the next\n"
        "iteration, so even the most aggressive bound loses no gradient\n"
        "mass — the stateless NIC stays unchanged, the state lives at\n"
        "the sender."
    )


if __name__ == "__main__":
    main()
