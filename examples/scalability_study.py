"""Scalability study: gradient-exchange time as the cluster grows.

Reproduces the Fig 15 experiment over a wider node range than the
paper's 4-8, with the analytical alpha/beta/gamma model overlaid on the
event simulation.

Run:  python examples/scalability_study.py [model]
"""

import sys

from repro.dnn import PAPER_MODELS
from repro.perfmodel import (
    CostParameters,
    compute_profile_for,
    ring_exchange_time,
    simulate_ring_exchange,
    simulate_wa_exchange,
    wa_exchange_time,
)


def main(model_name: str = "AlexNet") -> None:
    spec = PAPER_MODELS[model_name]
    profile = compute_profile_for(model_name)
    params = CostParameters.from_rates(2e-6, 10e9, profile.sum_bandwidth_bps)

    print(
        f"gradient exchange of {model_name} ({spec.size_mb:.0f} MB), "
        "seconds per iteration\n"
    )
    print(
        f"{'nodes':>6}{'WA sim':>10}{'WA model':>10}"
        f"{'INC sim':>10}{'INC model':>10}{'INC speedup':>12}"
    )
    for p in (2, 4, 6, 8, 12, 16):
        wa_sim = simulate_wa_exchange(p, spec.nbytes, profile=profile).total_s
        inc_sim = simulate_ring_exchange(p, spec.nbytes, profile=profile).total_s
        wa_model = wa_exchange_time(p, spec.nbytes, params)
        inc_model = ring_exchange_time(p, spec.nbytes, params)
        print(
            f"{p:>6}{wa_sim:>10.3f}{wa_model:>10.3f}"
            f"{inc_sim:>10.3f}{inc_model:>10.3f}{wa_sim / inc_sim:>11.2f}x"
        )

    print(
        "\nWA grows linearly with the cluster (everything funnels through\n"
        "the aggregator); the INCEPTIONN ring saturates at 2n beta per node\n"
        "— the paper's Sec. VIII-D scalability argument, measured."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "AlexNet")
