"""Train a real DNN across a simulated cluster: WA vs INCEPTIONN.

Trains the paper's HDC network (five FC layers) on a synthetic
handwritten-digit task across four simulated workers, under all four
Fig 12 configurations, and prints accuracy plus simulated wall-clock.

Run:  python examples/distributed_training.py
"""

from repro.distributed import train_distributed
from repro.dnn import LRSchedule, SGD, build_hdc, hdc_dataset
from repro.perfmodel import compute_profile_for
from repro.transport import ClusterConfig

CONFIGS = (
    ("WA", "wa", False),
    ("WA+C", "wa", True),
    ("INC", "ring", False),
    ("INC+C", "ring", True),
)


def main() -> None:
    dataset = hdc_dataset(train_size=800, test_size=200, seed=0)
    profile = compute_profile_for("HDC")
    iterations = 60

    print(f"training HDC for {iterations} iterations on 4 workers\n")
    print(f"{'config':<8}{'final top-1':>12}{'sim time (s)':>14}{'comm %':>8}")
    baseline_time = None
    for label, algorithm, compressed in CONFIGS:
        num_nodes = 5 if algorithm == "wa" else 4
        result = train_distributed(
            algorithm=algorithm,
            build_net=lambda s: build_hdc(seed=s),
            make_optimizer=lambda: SGD(LRSchedule(0.02), momentum=0.9),
            dataset=dataset,
            num_workers=4,
            iterations=iterations,
            batch_size=25,
            cluster=ClusterConfig(num_nodes=num_nodes, compression=compressed),
            profile=profile,
            compress_gradients=compressed,
        )
        if baseline_time is None:
            baseline_time = result.virtual_time_s
        print(
            f"{label:<8}{result.final_top1:>12.3f}"
            f"{result.virtual_time_s:>14.3f}"
            f"{100 * result.communication_fraction:>7.1f}%"
            f"   ({baseline_time / result.virtual_time_s:.2f}x vs WA)"
        )

    print(
        "\nINC+C reaches the same accuracy with every hop compressed and\n"
        "no aggregator — the paper's 2.2-3.1x speedup pattern at HDC scale."
    )


if __name__ == "__main__":
    main()
