#!/usr/bin/env python
"""Regenerate the machine-readable experiment report.

Usage:  python tools/regenerate_report.py [output.json]

Runs the timing/statistics experiments (a few seconds) and writes the
nested-dict report as JSON.  The human-readable counterpart lives in
EXPERIMENTS.md; the accuracy experiments (real training) are run by the
benches (`pytest benchmarks/ -s`).
"""

import sys
from pathlib import Path

from repro.report import dumps_strict, full_report


def main() -> int:
    output = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("report.json")
    report = full_report()
    output.write_text(dumps_strict(report, indent=2, sort_keys=True))
    print(f"wrote {output} ({output.stat().st_size} bytes)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
