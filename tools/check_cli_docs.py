#!/usr/bin/env python3
"""Doc-consistency check: every CLI flag the docs mention must exist.

Scans the user-facing documents (README.md, DESIGN.md, EXPERIMENTS.md)
for ``--flag`` tokens — in fenced code blocks on ``repro ...`` command
lines, and in inline code spans — and validates each against the real
``repro.cli.build_parser()`` option table.  Command lines are checked
against the specific subcommand they invoke (so ``repro exchange
--tenants`` passes but ``repro train --tenants`` fails); bare inline
mentions are checked against the union of every subcommand's options.

Run from the repo root (CI runs it as a dedicated job)::

    PYTHONPATH=src python tools/check_cli_docs.py

Exit status 0 when every mention resolves, 1 otherwise (unknown flags
are listed with file:line locations).
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Sequence, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_DOCS = ("README.md", "DESIGN.md", "EXPERIMENTS.md")

_FLAG_RE = re.compile(r"--[A-Za-z][A-Za-z0-9-]*")
_INLINE_CODE_RE = re.compile(r"`([^`]+)`")


def _subparser_actions(
    parser: argparse.ArgumentParser,
) -> List[argparse._SubParsersAction]:
    return [
        action
        for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    ]


def walk_parsers(
    parser: argparse.ArgumentParser, path: Tuple[str, ...] = ()
) -> Iterator[Tuple[Tuple[str, ...], argparse.ArgumentParser]]:
    """Yield ``(subcommand path, parser)`` for the parser tree."""
    yield path, parser
    for action in _subparser_actions(parser):
        seen: Set[int] = set()
        for name, sub in action.choices.items():
            if id(sub) in seen:  # alias of an already-walked parser
                continue
            seen.add(id(sub))
            yield from walk_parsers(sub, path + (name,))


def collect_options(
    parser: argparse.ArgumentParser,
) -> Dict[Tuple[str, ...], Set[str]]:
    """Map each subcommand path to the long options it accepts."""
    table: Dict[Tuple[str, ...], Set[str]] = {}
    for path, sub in walk_parsers(parser):
        table[path] = {
            opt
            for action in sub._actions
            for opt in action.option_strings
            if opt.startswith("--")
        }
    return table


def _resolve_command(
    tokens: Sequence[str], table: Dict[Tuple[str, ...], Set[str]]
) -> Tuple[Tuple[str, ...], Set[str]]:
    """Longest subcommand path matching ``tokens``, plus its options.

    The options of every parser along the path apply (argparse lets a
    parent's flags appear before the subcommand).
    """
    path: Tuple[str, ...] = ()
    allowed = set(table[()])
    for token in tokens:
        if token.startswith("-"):
            break
        candidate = path + (token,)
        if candidate not in table:
            break
        path = candidate
        allowed |= table[path]
    return path, allowed


def _flags_in(text: str) -> List[str]:
    return _FLAG_RE.findall(text)


def check_document(
    path: Path, table: Dict[Tuple[str, ...], Set[str]]
) -> List[str]:
    """All unknown-flag findings in one markdown document."""
    every_option: Set[str] = set()
    for options in table.values():
        every_option |= options

    errors: List[str] = []

    def check_command_text(text: str, lineno: int) -> None:
        tokens = text.split()
        try:
            start = tokens.index("repro") + 1
        except ValueError:
            return
        cmd_path, allowed = _resolve_command(tokens[start:], table)
        label = " ".join(("repro",) + cmd_path)
        for flag in _flags_in(" ".join(tokens[start:])):
            if flag not in allowed:
                hint = (
                    " (exists on another subcommand)"
                    if flag in every_option
                    else ""
                )
                errors.append(
                    f"{path.name}:{lineno}: unknown flag {flag} "
                    f"for `{label}`{hint}"
                )

    in_fence = False
    pending = ""
    pending_line = 0
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            pending = ""
            continue
        if in_fence:
            # Join "\"-continued command lines before parsing.
            stripped = line.strip().lstrip("$").strip()
            if pending:
                stripped = pending + " " + stripped
            if stripped.endswith("\\"):
                pending = stripped[:-1].strip()
                if pending_line == 0:
                    pending_line = lineno
                continue
            check_command_text(stripped, pending_line or lineno)
            pending = ""
            pending_line = 0
            continue
        for span in _INLINE_CODE_RE.findall(line):
            span = span.strip()
            if span.startswith("repro "):
                check_command_text(span, lineno)
            elif span.startswith("--"):
                for flag in _flags_in(span.split()[0]):
                    if flag not in every_option:
                        errors.append(
                            f"{path.name}:{lineno}: unknown flag {flag} "
                            "(no subcommand accepts it)"
                        )
    return errors


def main(argv: Sequence[str] = ()) -> int:
    docs = list(argv) or [str(REPO_ROOT / name) for name in DEFAULT_DOCS]
    from repro.cli import build_parser

    table = collect_options(build_parser())
    errors: List[str] = []
    checked = 0
    for name in docs:
        doc = Path(name)
        if not doc.exists():
            print(f"{doc}: missing", file=sys.stderr)
            return 1
        checked += 1
        errors.extend(check_document(doc, table))
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"{len(errors)} stale CLI reference(s)", file=sys.stderr)
        return 1
    print(f"CLI docs consistent ({checked} document(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
