"""Record strategy-parity pins from the current tree.

Run this against the *pre-refactor* implementations (the four
hand-rolled spawn loops) to capture the constants that
``tests/distributed/test_strategy_parity.py`` asserts the ported
registry plugins reproduce: final weights (sha256 of node 0's parameter
vector, bit-exact), wire bytes (exact), and virtual time (1e-6).

Usage: PYTHONPATH=src python tools/record_strategy_pins.py
"""

from __future__ import annotations

import hashlib
import json

from repro.core import inceptionn_profile
from repro.distributed import (
    ComputeProfile,
    GroupLayout,
    train_async_ps,
    train_distributed,
    train_hierarchical,
)
from repro.dnn import LRSchedule, SGD, build_hdc, hdc_dataset
from repro.transport import ClusterConfig

PROFILE = ComputeProfile(
    forward_s=1e-4,
    backward_s=3e-4,
    gpu_copy_s=5e-5,
    update_s=2e-4,
    sum_bandwidth_bps=10.4e9,
)
ITERATIONS = 8
WORKERS = 4


def _dataset():
    return hdc_dataset(train_size=400, test_size=100, seed=0)


def _common(compressed: bool):
    stream = inceptionn_profile() if compressed else None
    return dict(
        build_net=lambda s: build_hdc(seed=s),
        make_optimizer=lambda: SGD(LRSchedule(0.02), momentum=0.9),
        dataset=_dataset(),
        batch_size=16,
        stream=stream,
        seed=0,
    ), stream


def _pin(result) -> dict:
    weights = result.final_weights
    summary = result.transfers
    return {
        "weights_sha256": hashlib.sha256(weights.tobytes()).hexdigest(),
        "weights_sum": float(weights.sum()),
        "final_loss": float(result.losses[-1]),
        "virtual_time_s": result.virtual_time_s,
        "messages": summary.messages,
        "nbytes": summary.nbytes,
        "wire_payload_nbytes": summary.wire_payload_nbytes,
    }


def record() -> dict:
    pins: dict = {}
    for mode, compressed in (("raw", False), ("compressed", True)):
        common, stream = _common(compressed)
        pins[f"ring_{mode}"] = _pin(
            train_distributed(
                algorithm="ring",
                num_workers=WORKERS,
                iterations=ITERATIONS,
                cluster=ClusterConfig(num_nodes=WORKERS, profile=stream),
                profile=PROFILE,
                **common,
            )
        )
        pins[f"wa_{mode}"] = _pin(
            train_distributed(
                algorithm="wa",
                num_workers=WORKERS,
                iterations=ITERATIONS,
                cluster=ClusterConfig(num_nodes=WORKERS + 1, profile=stream),
                profile=PROFILE,
                **common,
            )
        )
        pins[f"hierarchy_{mode}"] = _pin(
            train_hierarchical(
                layout=GroupLayout.even(WORKERS, 2),
                iterations=ITERATIONS,
                cluster=ClusterConfig(num_nodes=WORKERS, profile=stream),
                profile=PROFILE,
                **common,
            )
        )
        pins[f"async_ps_{mode}"] = _pin(
            train_async_ps(
                num_workers=WORKERS,
                iterations_per_worker=ITERATIONS,
                cluster=ClusterConfig(num_nodes=WORKERS + 1, profile=stream),
                profile=PROFILE,
                compute_jitter=0.5,
                max_staleness=2,
                **common,
            )
        )
    return pins


if __name__ == "__main__":
    print(json.dumps(record(), indent=2))
